"""Narrated walkthrough demos behind ``examples/*.py``.

Each demo is a self-contained story printed to stdout, runnable two
equivalent ways::

    python -m repro demo quickstart
    python examples/quickstart.py        # thin wrapper over the CLI

The example scripts are wrappers over :mod:`repro.campaign.cli` so the
two entry points cannot drift; the prose lives here, next to the code
it narrates.  See ``docs/TUTORIAL.md`` for the long-form version that
strings these together into one device-to-campaign walkthrough.
"""

from __future__ import annotations

import numpy as np


def demo_quickstart() -> None:
    """Build a CP XOR gate, inject the paper's new fault, detect it.

    Walks the core loop of the library:

    1. instantiate the TIG-SiNWFET compact model and a DP XOR2
       testbench,
    2. inject a *stuck-at n-type* polarity fault (a bridge between t1's
       polarity terminal and VDD — the fault class this paper
       introduced),
    3. show that the output still reads correctly (a voltage tester
       misses it) while IDDQ explodes by ~5 orders of magnitude (an
       IDDQ tester catches it) — Table III, row one.
    """
    from repro.core import StuckAtNType
    from repro.gates import XOR2, build_cell_circuit
    from repro.spice import solve_dc
    from repro.spice.measure import logic_level

    vdd = 1.2

    # Fault-free reference: apply A=B=0 and measure output + IDDQ.
    good = build_cell_circuit(XOR2, fanout=4)
    good.set_vector((0, 0))
    op = solve_dc(good.circuit)
    good_level = logic_level(op.voltage("out"), vdd)
    good_iddq = op.supply_current("vdd")
    print(f"fault-free  : out = {op.voltage('out'):.3f} V "
          f"(logic {good_level}), IDDQ = {good_iddq * 1e12:.1f} pA")

    # Inject: polarity terminal of pull-up t1 bridged to VDD.
    faulty = build_cell_circuit(XOR2, fanout=4)
    StuckAtNType("t1").apply(faulty)
    faulty.set_vector((0, 0))
    op = solve_dc(faulty.circuit)
    level = logic_level(op.voltage("out"), vdd)
    iddq = op.supply_current("vdd")
    print(f"stuck-at-n t1: out = {op.voltage('out'):.3f} V "
          f"(logic {level}), IDDQ = {iddq * 1e9:.2f} nA")

    ratio = iddq / good_iddq
    print(f"\nIDDQ ratio: x{ratio:.2e}")
    print("A voltage test cannot rely on the output here; the supply")
    print("current gives the fault away — exactly Table III of the paper.")
    assert ratio > 1e4


def demo_device_characterization() -> None:
    """Device playground: I-V curves and GOS signatures (Fig. 3).

    Sweeps the calibrated TIG-SiNWFET compact model through its
    operating regions, demonstrates the controllable-polarity
    conduction condition, and reproduces the GOS fingerprints of
    Fig. 3 (ID(SAT) reduction, threshold shift, negative drain
    current).
    """
    from repro.device import (
        CurveMetrics,
        GateOxideShort,
        TIGSiNWFET,
        compare_to_fault_free,
        sweep_id_vcg,
    )

    vdd = 1.2
    device = TIGSiNWFET()

    print("Conduction condition (ID at VDS = VDD):")
    print("  CG PGS PGD    ID         state")
    for cg in (0, 1):
        for pgs in (0, 1):
            for pgd in (0, 1):
                current = device.drain_current(
                    cg * vdd, pgs * vdd, pgd * vdd, vdd, 0.0
                )
                state = "ON " if device.conducts(cg, pgs, pgd) else "off"
                mode = device.polarity(pgs, pgd)
                print(
                    f"   {cg}   {pgs}   {pgd}   {current:9.2e} A  "
                    f"{state} ({mode}-config)"
                )

    curve = sweep_id_vcg(device, "n")
    metrics = CurveMetrics.from_curve(curve)
    print(f"\nfault-free n-type: Ion={metrics.id_sat * 1e6:.2f} uA, "
          f"VTh={metrics.vth:.3f} V, SS={metrics.ss * 1e3:.0f} mV/dec, "
          f"on/off={metrics.on_off:.1e}")

    # Log-scale ASCII sketch of the transfer curve.
    print("\nfault-free (log10 |ID|):")
    log_i = np.log10(np.abs(np.asarray(curve.i_d)) + 1e-16)
    lo, hi = log_i.min(), log_i.max()
    for k in range(0, len(curve.v_cg), 10):
        bar = "#" * int(1 + 50 * (log_i[k] - lo) / max(hi - lo, 1e-9))
        print(f"  VCG={curve.v_cg[k]:4.2f}  {bar}")

    print("\nGate-oxide shorts (Fig. 3):")
    for location in ("pgs", "cg", "pgd"):
        defective = TIGSiNWFET(defect=GateOxideShort(location))
        numbers = compare_to_fault_free(defective, device)
        print(
            f"  GOS@{location.upper():3s}: "
            f"ID(SAT) x{numbers['id_sat_ratio']:.2f}, "
            f"dVTh {numbers['delta_vth'] * 1e3:+5.0f} mV, "
            f"min ID {numbers['i_min'] * 1e9:+7.2f} nA"
        )
    print("\nPaper anchors: PGS strongest drop (+170 mV shift), CG milder")
    print("with negative ID at low VCG, PGD slight increase / no shift.")


def demo_iddq_screening() -> None:
    """IDDQ screening of polarity-bridge defects on a parity tree.

    Section V-B: pull-up polarity faults never corrupt the output —
    only the supply current betrays them.  Builds an 8-bit XOR parity
    tree, selects a minimal IDDQ vector set with the greedy cover
    (the campaign's ``iddq`` fault class), and cross-checks one
    screened fault in the analog domain.
    """
    from repro.atpg import select_iddq_vectors
    from repro.circuits import parity_tree
    from repro.core import StuckAtNType, StuckAtPType
    from repro.faults import get_universe
    from repro.gates import build_cell_circuit, get_cell
    from repro.logic import simulate
    from repro.spice import solve_dc

    network = parity_tree(8)
    print(f"Circuit: {network}")

    faults = get_universe("polarity").enumerate(network)
    print(f"polarity faults: {len(faults)} "
          f"(stuck-at n/p per transistor over {len(network.gates)} DP gates)")

    selection = select_iddq_vectors(network)
    print(f"\ngreedy IDDQ cover: {len(selection.vectors)} vectors, "
          f"coverage {selection.coverage:.1%}")
    for k, vector in enumerate(selection.vectors):
        bits = "".join(
            str(vector[n]) for n in network.primary_inputs
        )
        covered = sum(1 for v in selection.covered.values() if v == k)
        print(f"  vector {k}: d7..d0 = {bits[::-1]}  "
              f"(first-covers {covered} faults)")

    # Analog cross-check: drive one covered fault's gate to its conflict
    # combination and measure the cell-level supply current.
    fault = faults[0]
    vector = selection.vectors[selection.covered[fault.name]]
    values = simulate(network, vector)
    gate = network.gates[fault.gate]
    local = tuple(values[n] for n in gate.inputs)
    print(f"\ncross-check {fault.name}: local inputs at {fault.gate} = "
          f"{local}")

    cell = get_cell(fault.gtype)
    good = build_cell_circuit(cell, fanout=4)
    good.set_vector(local)
    iddq_good = solve_dc(good.circuit).supply_current("vdd")
    bad = build_cell_circuit(cell, fanout=4)
    factory = StuckAtNType if fault.kind == "n" else StuckAtPType
    factory(fault.transistor).apply(bad)
    bad.set_vector(local)
    iddq_bad = solve_dc(bad.circuit).supply_current("vdd")
    print(f"  cell IDDQ: fault-free {iddq_good * 1e12:.1f} pA -> "
          f"faulty {iddq_bad * 1e9:.2f} nA "
          f"(x{iddq_bad / iddq_good:.1e})")


def demo_channel_break() -> None:
    """The paper's new test algorithm: detecting masked channel breaks.

    Section V-C: in dynamic-polarity gates the redundant
    pass-transistor pairs mask every single channel break — the gate
    keeps computing the right function, classic stuck-open two-pattern
    tests cannot exist, and delay/leakage shifts are too small to
    screen reliably.  The paper's procedure turns the *other*
    contribution (stuck-at n/p polarity configuration) into a test
    stimulus: deliberately invert the suspect device's polarity and
    watch whether it answers.
    """
    from repro.core import (
        channel_break_procedure,
        run_channel_break_procedure,
        two_pattern_sof_tests,
    )
    from repro.gates import NAND2, XOR2
    from repro.logic.switch_level import DeviceState, evaluate

    # 1. SP gates are fine with classic two-pattern tests.
    print("SP NAND2 stuck-open tests (classic two-pattern):")
    for test in two_pattern_sof_tests(NAND2):
        print(f"  {test.describe()}")

    # 2. DP gates: no transistor is ever essential -> no SOF test exists.
    print(f"\nDP XOR2 usable two-pattern tests: "
          f"{len(two_pattern_sof_tests(XOR2))} (all breaks masked)")
    for vector in ((0, 0), (0, 1), (1, 0), (1, 1)):
        broken = evaluate(XOR2, vector, {"t1": DeviceState.STUCK_OPEN})
        print(f"  A,B={vector}: output with broken t1 = {broken.output} "
              f"(function {XOR2.function(vector)}) -> masked")

    # 3. The paper's procedure, derived automatically per transistor.
    print("\nDerived channel-break procedure for XOR2/t3:")
    procedure = channel_break_procedure(XOR2, "t3")
    for step in procedure.steps:
        print(f"  inject {step.injected_state.value}, apply "
              f"A,B={step.vector}:")
        print(f"    intact device -> {step.expected_if_intact}")
        print(f"    broken device -> {step.expected_if_broken}")

    # 4. Execute it against both ground truths.
    print("\nExecuting the procedure on every transistor:")
    for transistor in ("t1", "t2", "t3", "t4"):
        detected = run_channel_break_procedure(
            XOR2, transistor, broken=True
        )
        false_alarm = run_channel_break_procedure(
            XOR2, transistor, broken=False
        )
        print(f"  {transistor}: broken device detected = {detected}, "
              f"false alarm on intact device = {false_alarm}")


def demo_atpg_flow() -> None:
    """Full ATPG flow on a CP benchmark (4-bit ripple-carry adder).

    The paper's thesis at circuit scale — the same four measurements
    the campaign grid runs as the ``stuck_at`` / ``polarity`` /
    ``iddq`` / ``stuck_open`` fault classes, told as one story:

    1. classic PODEM generates a compact 100 %-coverage stuck-at set;
    2. fault-simulating the *polarity* faults against that classic set
       shows most go undetected;
    3. the polarity-aware ATPG (voltage + IDDQ modes) covers them all;
    4. every DP-gate channel break is masked and flagged for the
       paper's polarity-inversion procedure.
    """
    from repro.atpg import (
        parallel_stuck_at_simulation,
        run_polarity_atpg,
        select_iddq_vectors,
        serial_polarity_simulation,
    )
    from repro.campaign.tasks import classic_stuck_at_testset
    from repro.circuits import ripple_carry_adder
    from repro.faults import get_universe

    network = ripple_carry_adder(4)
    print(f"Circuit: {network}")
    print(f"  stats: {network.stats()}")

    # 1. Classic stuck-at ATPG (fault list from the universe registry).
    sa_faults = get_universe("stuck_at").collapse(network)
    test_set = classic_stuck_at_testset(network)
    sa_cov = parallel_stuck_at_simulation(network, sa_faults, test_set)
    print(f"\n[1] classic stuck-at ATPG: {len(sa_faults)} faults, "
          f"{len(test_set)} compacted vectors, "
          f"coverage {sa_cov.coverage:.1%}")

    # 2. How much of the CP fault universe does that set cover?
    pol_faults = get_universe("polarity").enumerate(network)
    pol_by_sa = serial_polarity_simulation(network, pol_faults, test_set)
    print(f"\n[2] polarity faults (stuck-at n/p): {len(pol_faults)} total")
    print(f"    detected by the classic stuck-at set: "
          f"{pol_by_sa.coverage:.1%}  <-- the paper's gap")

    # 3. Polarity-aware ATPG closes it.
    pol_atpg = run_polarity_atpg(network)
    modes: dict[str, int] = {}
    for test in pol_atpg.tests:
        modes[test.mode] = modes.get(test.mode, 0) + 1
    print(f"\n[3] polarity ATPG coverage: {pol_atpg.coverage:.1%} "
          f"({modes.get('voltage', 0)} voltage tests, "
          f"{modes.get('iddq', 0)} IDDQ tests)")
    iddq = select_iddq_vectors(network)
    print(f"    compact IDDQ screen: {len(iddq.vectors)} vectors cover "
          f"{iddq.coverage:.1%} of polarity faults")

    # 4. Stuck-open census.
    sop = get_universe("stuck_open").enumerate(network)
    masked = [f for f in sop if f.is_masked()]
    print(f"\n[4] channel breaks: {len(sop)} sites, {len(masked)} masked "
          f"by DP redundancy -> require the Section V-C procedure")
    print("\nThe campaign version of this flow, over many circuits with")
    print("checkpointing and workers:  python -m repro paper-tables")


def demo_batched_sweeps() -> None:
    """The batched analog engine: one Newton loop, many bias points.

    Walks the three moves that make SPICE-level measurement
    campaign-scale (see ``docs/PERFORMANCE.md``):

    1. a full XOR2 DC truth table as *one* ``solve_dc_sweep`` call —
       every input vector is a row of a ``(B, n, n)`` Jacobian stack —
       checked against the scalar point-at-a-time reference,
    2. a miniature Fig. 5 ``Vcut`` sweep whose delay transients
       integrate in lockstep (``run_transient_sweep``),
    3. the process-level compact-model memo: injecting the same defect
       twice builds the device once.
    """
    import time

    from repro.analysis.sweeps import pull_up_vcut_axis, vcut_sweep
    from repro.device import clear_model_caches, model_cache_stats
    from repro.gates import XOR2, build_cell_circuit, get_cell
    from repro.spice import solve_dc, solve_dc_sweep

    # 1. Truth table: scalar loop vs one batched call.
    bench = build_cell_circuit(XOR2, fanout=4)
    vdd = bench.vdd
    vectors = [(0, 0), (0, 1), (1, 0), (1, 1)]
    t0 = time.perf_counter()
    scalar = []
    for vector in vectors:
        bench.set_vector(vector)
        scalar.append(solve_dc(bench.circuit))
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    sweep = solve_dc_sweep(
        bench.circuit, [bench.vector_bias(v) for v in vectors]
    )
    t_batched = time.perf_counter() - t0
    print("XOR2 truth table, scalar vs batched (one Newton loop):")
    worst = 0.0
    for k, vector in enumerate(vectors):
        v_seq = scalar[k].voltage("out")
        v_bat = float(sweep.voltages("out")[k])
        worst = max(worst, abs(v_seq - v_bat))
        print(f"  A,B={vector}: out = {v_bat:6.3f} V   "
              f"(scalar {v_seq:6.3f} V)")
    print(f"  worst |dV| = {worst:.1e} V, "
          f"{t_scalar * 1e3:.0f} ms -> {t_batched * 1e3:.0f} ms "
          f"(x{t_scalar / max(t_batched, 1e-9):.1f})")

    # 2. Mini Fig. 5: the Vcut delay transients run in lockstep.
    cell = get_cell("INV")
    axis = pull_up_vcut_axis(vdd, points=4)
    t0 = time.perf_counter()
    result = vcut_sweep(cell, "t1", "pgs", axis, engine="batched")
    t_sweep = time.perf_counter() - t0
    print(f"\nINV t1/pgs Vcut sweep ({len(axis)} points, batched, "
          f"{t_sweep * 1e3:.0f} ms):")
    for p in result.points:
        delay = (
            f"{p.delay * 1e12:6.1f} ps" if p.delay < 1 else "   stuck"
        )
        print(f"  Vcut={p.vcut:4.2f} V: delay {delay}, "
              f"IDDQ {p.leakage * 1e12:8.1f} pA, "
              f"functional={p.functional}")

    # 3. The model memo: same (params, defect) -> same instance.
    from repro.core.fault_models import GOSFault

    clear_model_caches()
    bench_a = build_cell_circuit(XOR2, fanout=4)
    bench_b = build_cell_circuit(XOR2, fanout=4)
    GOSFault("t1", "pgs").apply(bench_a)
    GOSFault("t1", "pgs").apply(bench_b)
    stats = model_cache_stats()
    shared = (
        bench_a.circuit.devices["xor2.t1"].model
        is bench_b.circuit.devices["xor2.t1"].model
    )
    print(f"\nmodel memo: device hits={stats['device_hits']}, "
          f"misses={stats['device_misses']}; "
          f"two GOS injections share one instance: {shared}")
    assert shared


#: name -> demo; keys match ``repro demo`` choices and examples/*.py.
DEMOS = {
    "quickstart": demo_quickstart,
    "device-characterization": demo_device_characterization,
    "iddq-screening": demo_iddq_screening,
    "channel-break": demo_channel_break,
    "atpg-flow": demo_atpg_flow,
    "batched-sweeps": demo_batched_sweeps,
}
