"""ASCII rendering helpers for benchmark reports."""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def line(row):
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))
    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_quantity(value: float, unit: str = "") -> str:
    """Engineering-style formatting (inf-safe)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "n/a"
    if math.isinf(value):
        return "inf"
    prefixes = [
        (1e-15, 1e18, "a"),
        (1e-12, 1e15, "f"),
        (1e-9, 1e12, "p"),
        (1e-6, 1e9, "n"),
        (1e-3, 1e6, "u"),
        (1.0, 1e3, "m"),
        (1e3, 1.0, ""),
    ]
    magnitude = abs(value)
    if magnitude == 0:
        return f"0 {unit}".strip()
    for limit, scale, prefix in prefixes:
        if magnitude < limit:
            return f"{value * scale:.3g} {prefix}{unit}".strip()
    return f"{value:.3g} {unit}".strip()


def format_series(
    x_label: str,
    y_label: str,
    xs: Sequence[float],
    ys: Sequence[float],
) -> str:
    """Render a data series as aligned columns (a text 'figure')."""
    lines = [f"{x_label:>12s}  {y_label}"]
    for x, y in zip(xs, ys):
        if isinstance(y, float) and math.isinf(y):
            lines.append(f"{x:12.4g}  inf")
        else:
            lines.append(f"{x:12.4g}  {y:.6g}")
    return "\n".join(lines)


def save_report(name: str, text: str, directory: str | Path = None) -> Path:
    """Persist a benchmark report under ``benchmarks/out``."""
    if directory is None:
        directory = Path(__file__).resolve().parents[3] / "benchmarks" / "out"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path
