"""Circuit-simulation substrate (the paper's HSPICE stand-in).

Modified nodal analysis with Newton-Raphson DC (gmin continuation) and
backward-Euler transient integration; vectorised TIG-SiNWFET evaluation;
delay/leakage (IDDQ) measurement helpers.
"""

from repro.spice.dc import OperatingPoint, solve_dc, sweep_dc
from repro.spice.measure import (
    logic_level,
    output_swing,
    propagation_delay,
    settles_to,
    threshold_crossings,
)
from repro.spice.mna import ConvergenceError, MNASystem, NewtonOptions
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    DeviceInstance,
    Resistor,
    VoltageSource,
)
from repro.spice.transient import (
    TransientResult,
    operating_point_from_result,
    run_transient,
)
from repro.spice.waveforms import DC, PWL, Pulse, Step, Waveform, bit_sequence

__all__ = [
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DC",
    "DeviceInstance",
    "MNASystem",
    "NewtonOptions",
    "OperatingPoint",
    "PWL",
    "Pulse",
    "Resistor",
    "Step",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "bit_sequence",
    "logic_level",
    "operating_point_from_result",
    "output_swing",
    "propagation_delay",
    "run_transient",
    "settles_to",
    "solve_dc",
    "sweep_dc",
    "threshold_crossings",
]
