"""Circuit-simulation substrate (the paper's HSPICE stand-in).

Modified nodal analysis with Newton-Raphson DC (gmin continuation) and
backward-Euler transient integration; vectorised TIG-SiNWFET evaluation;
delay/leakage (IDDQ) measurement helpers.
"""

from repro.spice.batched import (
    DCSweepResult,
    run_transient_sweep,
    solve_dc_sweep,
)
from repro.spice.dc import OperatingPoint, solve_dc, sweep_dc
from repro.spice.measure import (
    final_supply_currents,
    logic_level,
    output_swing,
    propagation_delay,
    propagation_delays,
    settles_to,
    threshold_crossings,
)
from repro.spice.mna import ConvergenceError, MNASystem, NewtonOptions
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    DeviceInstance,
    Resistor,
    VoltageSource,
)
from repro.spice.transient import (
    TransientResult,
    operating_point_from_result,
    run_transient,
)
from repro.spice.waveforms import DC, PWL, Pulse, Step, Waveform, bit_sequence

__all__ = [
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "CurrentSource",
    "DC",
    "DCSweepResult",
    "DeviceInstance",
    "MNASystem",
    "NewtonOptions",
    "OperatingPoint",
    "PWL",
    "Pulse",
    "Resistor",
    "Step",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "bit_sequence",
    "final_supply_currents",
    "logic_level",
    "operating_point_from_result",
    "output_swing",
    "propagation_delay",
    "propagation_delays",
    "run_transient",
    "run_transient_sweep",
    "settles_to",
    "solve_dc",
    "solve_dc_sweep",
    "sweep_dc",
    "threshold_crossings",
]
