"""DC operating-point analysis."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.mna import MNASystem, NewtonOptions
from repro.spice.netlist import Circuit


@dataclasses.dataclass
class OperatingPoint:
    """Result of a DC analysis.

    Attributes:
        voltages: Node name -> voltage [V] (ground nodes are implied 0).
        source_currents: Voltage-source name -> branch current [A]
            flowing from the positive terminal through the source to the
            negative terminal (so a supply sourcing current into the
            circuit reports a *negative* value, as in SPICE).
    """

    voltages: dict[str, float]
    source_currents: dict[str, float]

    def voltage(self, node: str) -> float:
        if Circuit.is_ground(node):
            return 0.0
        return self.voltages[node]

    def supply_current(self, source_name: str = "vdd") -> float:
        """Magnitude of the current delivered by a supply source.

        This is the paper's IDDQ observable: the static current drawn
        from VDD.
        """
        return abs(self.source_currents[source_name])


def solve_dc(
    circuit: Circuit,
    t: float = 0.0,
    x0: np.ndarray | None = None,
    options: NewtonOptions | None = None,
    system: MNASystem | None = None,
) -> OperatingPoint:
    """Compute the DC operating point of ``circuit``.

    Waveform sources are evaluated at time ``t``.  A pre-built
    :class:`MNASystem` can be supplied to amortise assembly across many
    solves (e.g. input-vector sweeps on a fixed topology).
    """
    mna = system if system is not None else MNASystem(circuit)
    x = mna.solve_dc_continuation(t=t, x0=x0, options=options)
    voltages = {
        name: float(x[k]) for name, k in mna.node_index.items()
    }
    source_currents = {
        name: float(x[mna.n_nodes + k])
        for k, name in enumerate(mna.vsource_names)
    }
    return OperatingPoint(voltages=voltages, source_currents=source_currents)


def sweep_dc(
    circuit: Circuit,
    source_name: str,
    values: np.ndarray,
    options: NewtonOptions | None = None,
    system: MNASystem | None = None,
) -> list[OperatingPoint]:
    """Sweep the DC level of one voltage source, warm-starting each point.

    The points of an ordered source sweep are chained (each solution is
    the next point's initial guess), so they solve sequentially on one
    shared system; for *independent* bias points use
    :func:`repro.spice.batched.solve_dc_sweep`, which vectorises the
    whole batch through one multi-point Newton loop.
    """
    from repro.spice.waveforms import DC

    if source_name not in circuit.vsources:
        raise KeyError(f"no voltage source named {source_name!r}")
    mna = system if system is not None else MNASystem(circuit)
    results: list[OperatingPoint] = []
    x_prev: np.ndarray | None = None
    for value in values:
        circuit.vsources[source_name].waveform = DC(float(value))
        x = mna.solve_dc_continuation(t=0.0, x0=x_prev, options=options)
        x_prev = x
        voltages = {
            name: float(x[k]) for name, k in mna.node_index.items()
        }
        source_currents = {
            name: float(x[mna.n_nodes + k])
            for k, name in enumerate(mna.vsource_names)
        }
        results.append(
            OperatingPoint(voltages=voltages, source_currents=source_currents)
        )
    return results
