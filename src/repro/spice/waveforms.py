"""Source waveforms for the circuit simulator (DC, PWL, pulse, step)."""

from __future__ import annotations

import bisect
import dataclasses


class Waveform:
    """Base class: a scalar function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.value(t)


@dataclasses.dataclass(frozen=True)
class DC(Waveform):
    """Constant level."""

    level: float

    def value(self, t: float) -> float:
        del t
        return self.level


@dataclasses.dataclass(frozen=True)
class PWL(Waveform):
    """Piece-wise linear waveform given as (time, value) points.

    Holds the first value before the first point and the last value after
    the last point.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("PWL needs at least one point")
        times = [t for t, _ in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")

    def value(self, t: float) -> float:
        times = [p[0] for p in self.points]
        if t <= times[0]:
            return self.points[0][1]
        if t >= times[-1]:
            return self.points[-1][1]
        k = bisect.bisect_right(times, t)
        t0, v0 = self.points[k - 1]
        t1, v1 = self.points[k]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)


@dataclasses.dataclass(frozen=True)
class Step(Waveform):
    """A single linear-ramp transition from ``v0`` to ``v1``."""

    v0: float
    v1: float
    t_step: float
    t_rise: float = 10e-12

    def value(self, t: float) -> float:
        if t <= self.t_step:
            return self.v0
        if t >= self.t_step + self.t_rise:
            return self.v1
        frac = (t - self.t_step) / self.t_rise
        return self.v0 + (self.v1 - self.v0) * frac


@dataclasses.dataclass(frozen=True)
class Pulse(Waveform):
    """Periodic trapezoidal pulse (SPICE PULSE-style).

    Starts at ``v0``, rises to ``v1`` after ``t_delay``, stays high for
    ``t_width`` and repeats every ``t_period``.
    """

    v0: float
    v1: float
    t_delay: float
    t_rise: float
    t_fall: float
    t_width: float
    t_period: float

    def __post_init__(self) -> None:
        active = self.t_rise + self.t_width + self.t_fall
        if self.t_period <= 0 or active > self.t_period:
            raise ValueError("pulse timing does not fit in the period")

    def value(self, t: float) -> float:
        if t < self.t_delay:
            return self.v0
        tau = (t - self.t_delay) % self.t_period
        if tau < self.t_rise:
            return self.v0 + (self.v1 - self.v0) * tau / self.t_rise
        tau -= self.t_rise
        if tau < self.t_width:
            return self.v1
        tau -= self.t_width
        if tau < self.t_fall:
            return self.v1 + (self.v0 - self.v1) * tau / self.t_fall
        return self.v0


@dataclasses.dataclass(frozen=True)
class Complement(Waveform):
    """``vdd - base(t)``: the rail-referenced complement of a waveform.

    DP logic gates receive complemented inputs (Fig. 2); testbenches use
    this wrapper so complement inputs track their true inputs exactly.
    """

    base: Waveform
    vdd: float

    def value(self, t: float) -> float:
        return self.vdd - self.base.value(t)


def bit_sequence(
    bits: list[int],
    vdd: float,
    bit_time: float,
    t_rise: float = 10e-12,
) -> PWL:
    """Build a PWL waveform from a logic bit sequence.

    Each bit occupies ``bit_time``; transitions take ``t_rise``.  Useful
    for two-pattern (initialise, test) stuck-open sequences.
    """
    if not bits:
        raise ValueError("need at least one bit")
    points: list[tuple[float, float]] = [(0.0, bits[0] * vdd)]
    for k in range(1, len(bits)):
        if bits[k] != bits[k - 1]:
            t0 = k * bit_time
            points.append((t0, bits[k - 1] * vdd))
            points.append((t0 + t_rise, bits[k] * vdd))
    end = len(bits) * bit_time
    points.append((end, bits[-1] * vdd))
    return PWL(tuple(points))
