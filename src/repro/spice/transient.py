"""Transient analysis (backward-Euler with Newton at each step).

Backward Euler is unconditionally stable and mildly dissipative — the
right trade-off for delay/leakage characterisation where ringing artifacts
would corrupt 50 %-crossing measurements.  Capacitors become conductance
companions ``C/dt`` with a history current; the step size is fixed and
chosen by the caller relative to the input edge rate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.dc import OperatingPoint
from repro.spice.mna import ConvergenceError, MNASystem, NewtonOptions
from repro.spice.netlist import Circuit


@dataclasses.dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        times: Sample times [s], shape (n,).
        voltages: Node name -> voltage samples, each shape (n,).
        source_currents: Voltage-source name -> branch current samples.
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        if Circuit.is_ground(node):
            return np.zeros_like(self.times)
        return self.voltages[node]

    def final_supply_current(self, source_name: str = "vdd") -> float:
        """|supply current| averaged over the last 5 % of the run."""
        samples = np.abs(self.source_currents[source_name])
        tail = max(1, len(samples) // 20)
        return float(np.mean(samples[-tail:]))


def run_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    options: NewtonOptions | None = None,
    x0: np.ndarray | None = None,
) -> TransientResult:
    """Integrate the circuit from its DC operating point to ``t_stop``.

    Args:
        circuit: The circuit to simulate.
        t_stop: End time [s].
        dt: Fixed time step [s].
        options: Newton options.
        x0: Optional initial solution (defaults to the DC point at t=0).
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    mna = MNASystem(circuit)
    opts = options or NewtonOptions()

    # Capacitor companion pattern (constant for fixed dt).
    g_cap = np.zeros((mna.size, mna.size))
    cap_pairs: list[tuple[int, int, float]] = []
    for cap in circuit.capacitors.values():
        a = mna._index(cap.a)
        b = mna._index(cap.b)
        geq = cap.capacitance / dt
        cap_pairs.append((a, b, geq))
        if a >= 0:
            g_cap[a, a] += geq
        if b >= 0:
            g_cap[b, b] += geq
        if a >= 0 and b >= 0:
            g_cap[a, b] -= geq
            g_cap[b, a] -= geq

    x = (
        x0.copy()
        if x0 is not None
        else mna.solve_dc_continuation(t=0.0, options=opts)
    )
    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    trace = np.empty((n_steps + 1, mna.size))
    trace[0] = x

    for step in range(1, n_steps + 1):
        t = times[step]
        b = mna.source_rhs(t)
        # History currents: i_extra = -C/dt * v_prev (per capacitor).
        i_extra = np.zeros(mna.size)
        for a, bb, geq in cap_pairs:
            va = x[a] if a >= 0 else 0.0
            vb = x[bb] if bb >= 0 else 0.0
            hist = geq * (va - vb)
            if a >= 0:
                i_extra[a] -= hist
            if bb >= 0:
                i_extra[bb] += hist
        try:
            x = mna.solve_newton(
                x, b, g_extra=g_cap, i_extra=i_extra, options=opts
            )
        except ConvergenceError:
            # Retry once from a relaxed starting point with gmin support;
            # transient steps occasionally straddle a steep device region.
            x = mna.solve_newton(
                x, b, g_extra=g_cap, i_extra=i_extra, options=opts,
                gmin=1e-9,
            )
        trace[step] = x

    voltages = {
        name: trace[:, k].copy() for name, k in mna.node_index.items()
    }
    source_currents = {
        name: trace[:, mna.n_nodes + k].copy()
        for k, name in enumerate(mna.vsource_names)
    }
    return TransientResult(
        times=times, voltages=voltages, source_currents=source_currents
    )


def operating_point_from_result(
    result: TransientResult, index: int = -1
) -> OperatingPoint:
    """Snapshot a transient sample as an operating point."""
    return OperatingPoint(
        voltages={n: float(v[index]) for n, v in result.voltages.items()},
        source_currents={
            n: float(i[index]) for n, i in result.source_currents.items()
        },
    )
