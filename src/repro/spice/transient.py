"""Transient analysis (backward-Euler with Newton at each step).

Backward Euler is unconditionally stable and mildly dissipative — the
right trade-off for delay/leakage characterisation where ringing artifacts
would corrupt 50 %-crossing measurements.  Capacitors become conductance
companions ``C/dt`` with a history current; the step size is fixed and
chosen by the caller relative to the input edge rate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.dc import OperatingPoint
from repro.spice.mna import ConvergenceError, MNASystem, NewtonOptions
from repro.spice.netlist import Circuit


@dataclasses.dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes:
        times: Sample times [s], shape (n,).
        voltages: Node name -> voltage samples, each shape (n,).
        source_currents: Voltage-source name -> branch current samples.
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        if Circuit.is_ground(node):
            return np.zeros_like(self.times)
        return self.voltages[node]

    def final_supply_current(self, source_name: str = "vdd") -> float:
        """|supply current| averaged over the last 5 % of the run."""
        samples = np.abs(self.source_currents[source_name])
        tail = max(1, len(samples) // 20)
        return float(np.mean(samples[-tail:]))


def capacitor_companions(
    mna: MNASystem, dt: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Backward-Euler capacitor companion stamp for a fixed ``dt``.

    Returns ``(g_cap, a_idx, b_idx, geq)``: the conductance stamp to add
    to the linear base, plus per-capacitor unknown indices (−1 for
    ground) and companion conductances ``C/dt``, in netlist order.  The
    single recipe is shared by the scalar integrator below and the
    batched lockstep integrator in :mod:`repro.spice.batched`, so the
    two cannot drift.
    """
    circuit = mna.circuit
    g_cap = np.zeros((mna.size, mna.size))
    n_caps = len(circuit.capacitors)
    a_idx = np.empty(n_caps, dtype=int)
    b_idx = np.empty(n_caps, dtype=int)
    geq = np.empty(n_caps)
    for k, cap in enumerate(circuit.capacitors.values()):
        a = mna._index(cap.a)
        b = mna._index(cap.b)
        a_idx[k], b_idx[k] = a, b
        geq[k] = cap.capacitance / dt
        if a >= 0:
            g_cap[a, a] += geq[k]
        if b >= 0:
            g_cap[b, b] += geq[k]
        if a >= 0 and b >= 0:
            g_cap[a, b] -= geq[k]
            g_cap[b, a] -= geq[k]
    return g_cap, a_idx, b_idx, geq


def run_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    options: NewtonOptions | None = None,
    x0: np.ndarray | None = None,
    system: MNASystem | None = None,
) -> TransientResult:
    """Integrate the circuit from its DC operating point to ``t_stop``.

    Args:
        circuit: The circuit to simulate.
        t_stop: End time [s].
        dt: Fixed time step [s].
        options: Newton options.
        x0: Optional initial solution (defaults to the DC point at t=0).
        system: Pre-built :class:`MNASystem` to amortise assembly across
            repeated transients on a fixed topology.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    mna = system if system is not None else MNASystem(circuit)
    opts = options or NewtonOptions()

    # Capacitor companion pattern (constant for fixed dt).
    g_cap, a_idx, b_idx, geq_arr = capacitor_companions(mna, dt)
    cap_pairs = list(zip(a_idx, b_idx, geq_arr))

    x = (
        x0.copy()
        if x0 is not None
        else mna.solve_dc_continuation(t=0.0, options=opts)
    )
    # The time-invariant linear base (stamp + capacitor companions) is
    # summed once here and reused by every step's Newton solve; the
    # retry variant adds its gmin support lazily.
    g_base = mna.g_linear + g_cap
    g_base_retry: np.ndarray | None = None
    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    trace = np.empty((n_steps + 1, mna.size))
    trace[0] = x

    for step in range(1, n_steps + 1):
        t = times[step]
        b = mna.source_rhs(t)
        # History currents: i_extra = -C/dt * v_prev (per capacitor).
        i_extra = np.zeros(mna.size)
        for a, bb, geq in cap_pairs:
            va = x[a] if a >= 0 else 0.0
            vb = x[bb] if bb >= 0 else 0.0
            hist = geq * (va - vb)
            if a >= 0:
                i_extra[a] -= hist
            if bb >= 0:
                i_extra[bb] += hist
        try:
            x = mna.solve_newton(
                x, b, i_extra=i_extra, options=opts, g_base=g_base
            )
        except ConvergenceError:
            # Retry once from a relaxed starting point with gmin support;
            # transient steps occasionally straddle a steep device region.
            if g_base_retry is None:
                g_base_retry = g_base.copy()
                idx = np.arange(mna.n_nodes)
                g_base_retry[idx, idx] += 1e-9
            x = mna.solve_newton(
                x, b, i_extra=i_extra, options=opts, g_base=g_base_retry,
            )
        trace[step] = x

    voltages = {
        name: trace[:, k].copy() for name, k in mna.node_index.items()
    }
    source_currents = {
        name: trace[:, mna.n_nodes + k].copy()
        for k, name in enumerate(mna.vsource_names)
    }
    return TransientResult(
        times=times, voltages=voltages, source_currents=source_currents
    )


def operating_point_from_result(
    result: TransientResult, index: int = -1
) -> OperatingPoint:
    """Snapshot a transient sample as an operating point."""
    return OperatingPoint(
        voltages={n: float(v[index]) for n, v in result.voltages.items()},
        source_currents={
            n: float(i[index]) for n, i in result.source_currents.items()
        },
    )
