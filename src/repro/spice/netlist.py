"""Circuit netlist representation for the MNA simulator.

A :class:`Circuit` is a named collection of elements over named nodes.
Supported elements: resistors, capacitors, (time-dependent) voltage
sources, current sources and five-terminal TIG-SiNWFET instances.

Fault-injection helpers mirror the paper's defect set at circuit level:

* :meth:`Circuit.replace_device_model` — swap in a defective compact model
  (GOS, channel break, parameter drift) for one transistor;
* :meth:`Circuit.disconnect_terminal` — open defect: rewires one device
  terminal to a fresh floating node (drive it with a source to sweep the
  paper's ``Vcut``);
* :meth:`Circuit.add_bridge` — resistive bridge between two nets (the
  polarity-terminal-to-rail bridge of Section V-B, inter-connect bridges
  of Table I step 5).
"""

from __future__ import annotations

import dataclasses

from repro.spice.waveforms import DC, Waveform

GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})

DEVICE_TERMINALS = ("d", "cg", "pgs", "pgd", "s")


@dataclasses.dataclass
class Resistor:
    name: str
    a: str
    b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(
                f"resistor {self.name}: resistance must be positive"
            )


@dataclasses.dataclass
class Capacitor:
    name: str
    a: str
    b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitor {self.name}: capacitance must be positive"
            )


@dataclasses.dataclass
class VoltageSource:
    name: str
    pos: str
    neg: str
    waveform: Waveform


@dataclasses.dataclass
class CurrentSource:
    name: str
    pos: str
    neg: str
    waveform: Waveform


@dataclasses.dataclass
class DeviceInstance:
    """A TIG-SiNWFET instance: model + terminal-to-node mapping."""

    name: str
    model: object  # TIGSiNWFET or TableModel (duck-typed)
    d: str
    cg: str
    pgs: str
    pgd: str
    s: str

    def terminal_nodes(self) -> dict[str, str]:
        return {t: getattr(self, t) for t in DEVICE_TERMINALS}


class Circuit:
    """A flat transistor-level circuit."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.resistors: dict[str, Resistor] = {}
        self.capacitors: dict[str, Capacitor] = {}
        self.vsources: dict[str, VoltageSource] = {}
        self.isources: dict[str, CurrentSource] = {}
        self.devices: dict[str, DeviceInstance] = {}
        self._float_counter = 0

    # ------------------------------------------------------------------
    # Element constructors
    # ------------------------------------------------------------------
    def _check_new(self, name: str) -> None:
        for table in (
            self.resistors,
            self.capacitors,
            self.vsources,
            self.isources,
            self.devices,
        ):
            if name in table:
                raise ValueError(f"duplicate element name {name!r}")

    def add_resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        self._check_new(name)
        element = Resistor(name, a, b, resistance)
        self.resistors[name] = element
        return element

    def add_capacitor(
        self, name: str, a: str, b: str, capacitance: float
    ) -> Capacitor:
        self._check_new(name)
        element = Capacitor(name, a, b, capacitance)
        self.capacitors[name] = element
        return element

    def add_vsource(
        self, name: str, pos: str, neg: str, waveform: Waveform | float
    ) -> VoltageSource:
        self._check_new(name)
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        element = VoltageSource(name, pos, neg, waveform)
        self.vsources[name] = element
        return element

    def add_isource(
        self, name: str, pos: str, neg: str, waveform: Waveform | float
    ) -> CurrentSource:
        self._check_new(name)
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        element = CurrentSource(name, pos, neg, waveform)
        self.isources[name] = element
        return element

    def add_device(
        self,
        name: str,
        model: object,
        d: str,
        cg: str,
        pgs: str,
        pgd: str,
        s: str,
    ) -> DeviceInstance:
        self._check_new(name)
        element = DeviceInstance(name, model, d, cg, pgs, pgd, s)
        self.devices[name] = element
        return element

    # ------------------------------------------------------------------
    # Topology queries
    # ------------------------------------------------------------------
    def nodes(self) -> list[str]:
        """All non-ground node names, sorted for deterministic ordering."""
        found: set[str] = set()
        for r in self.resistors.values():
            found.update((r.a, r.b))
        for c in self.capacitors.values():
            found.update((c.a, c.b))
        for v in self.vsources.values():
            found.update((v.pos, v.neg))
        for i in self.isources.values():
            found.update((i.pos, i.neg))
        for dev in self.devices.values():
            found.update(dev.terminal_nodes().values())
        return sorted(found - GROUND_NAMES)

    @staticmethod
    def is_ground(node: str) -> bool:
        return node in GROUND_NAMES

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def replace_device_model(self, name: str, model: object) -> None:
        """Swap the compact model of one device (defect injection)."""
        if name not in self.devices:
            raise KeyError(f"no device named {name!r}")
        self.devices[name].model = model

    def disconnect_terminal(self, device_name: str, terminal: str) -> str:
        """Open defect: float one device terminal.

        The terminal is rewired to a fresh node, which is returned so the
        caller can attach a source (to sweep the floating-node voltage
        ``Vcut``) or a leakage resistor.
        """
        if device_name not in self.devices:
            raise KeyError(f"no device named {device_name!r}")
        if terminal not in DEVICE_TERMINALS:
            raise ValueError(
                f"terminal must be one of {DEVICE_TERMINALS}, got {terminal!r}"
            )
        self._float_counter += 1
        float_node = f"_float_{device_name}_{terminal}_{self._float_counter}"
        setattr(self.devices[device_name], terminal, float_node)
        return float_node

    def add_bridge(
        self, a: str, b: str, resistance: float = 1e3, name: str | None = None
    ) -> Resistor:
        """Bridge defect: a (low-ohmic) resistive short between two nets."""
        if name is None:
            name = f"_bridge_{a}_{b}"
        return self.add_resistor(name, a, b, resistance)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Circuit({self.title!r}: {len(self.devices)} devices, "
            f"{len(self.resistors)} R, {len(self.capacitors)} C, "
            f"{len(self.vsources)} V)"
        )
