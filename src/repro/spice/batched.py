"""Batched multi-point analog engine: vectorized Newton DC sweeps.

The measurement workloads behind the paper's Section III-D/V-B
observables (DC truth tables, IDDQ screens, Fig. 5 ``Vcut`` sweeps) are
embarrassingly parallel across bias points: the same :class:`MNASystem`
is solved at B independent source configurations.  This module stacks
those B points into one vectorized Newton loop:

* device evaluation runs over a ``(B, n_devices, 6, 5)`` perturbation
  tensor (one compact-model call per device group per iteration, not
  one per point),
* the ``(B, size, size)`` Jacobian stack is solved with one batched
  ``numpy.linalg.solve`` call,
* converged points freeze (they drop out of the active set) while
  stragglers keep iterating, and a non-convergent or singular point is
  isolated instead of poisoning the batch,
* the per-point control flow — damping, gmin ladder, convergence tests
  — mirrors :meth:`MNASystem.solve_newton` decision for decision, so
  batched and sequential solutions agree to well below 1e-9 V.

:func:`run_transient_sweep` extends the same machinery to transient
analysis: B variants of one circuit (differing only in source drive)
integrate in lockstep, one batched Newton solve per time step.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.spice.dc import OperatingPoint
from repro.spice.mna import (
    ConvergenceError,
    MNASystem,
    NewtonOptions,
    _FD_STEP,
)
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientResult, capacitor_companions
from repro.spice.waveforms import Waveform

#: A bias point: voltage-source name -> DC level [V] overriding the
#: source's own waveform.  Sources not named keep their waveform value.
BiasPoint = Mapping[str, float]


# ---------------------------------------------------------------------------
# Batched device evaluation
# ---------------------------------------------------------------------------

def device_contributions_batch(
    system: MNASystem, x: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nonlinear currents/Jacobians for a ``(B, size)`` solution stack.

    Batched analogue of :meth:`MNASystem.device_contributions`: returns
    ``(i_dev, j_dev)`` of shapes ``(B, size)`` and ``(B, size, size)``.
    The scatter-add order per point matches the sequential path exactly
    (same precomputed index arrays), so contributions are bit-identical.
    """
    n_batch, size = x.shape
    i_dev = np.zeros((n_batch, size))
    j_dev = np.zeros((n_batch, size, size))
    i_flat = i_dev.reshape(n_batch * size)
    j_flat = j_dev.reshape(n_batch * size * size)
    i_offsets = np.arange(n_batch)[:, None] * size
    j_offsets = np.arange(n_batch)[:, None] * (size * size)
    for (model, _names, index_matrix, i_valid, i_targets,
         j_valid, j_targets, index_clipped) in system.device_groups:
        n = index_matrix.shape[0]
        base = np.where(i_valid, x[:, index_clipped], 0.0)  # (B, n, 5)
        pert = np.broadcast_to(
            base[:, :, None, :], (n_batch, n, 6, 5)
        ).copy()
        for j in range(5):
            pert[:, :, j + 1, j] += _FD_STEP
        currents = model.terminal_current_matrix(pert)  # (B, n, 6, 5)
        i_base = currents[:, :, 0, :]
        didv = (
            currents[:, :, 1:, :] - currents[:, :, None, 0, :]
        ) / _FD_STEP
        np.add.at(i_flat, i_offsets + i_targets[None, :],
                  i_base[:, i_valid])
        np.add.at(j_flat, j_offsets + j_targets[None, :],
                  didv[:, j_valid])
    return i_dev, j_dev


def _solve_stack(jacobian: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched linear solve; singular members yield NaN rows.

    ``numpy.linalg.solve`` raises for the whole stack when any member is
    singular; the fallback isolates offenders point by point so one bad
    bias point cannot poison the batch.
    """
    try:
        return np.linalg.solve(jacobian, rhs[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(rhs)
        for k in range(jacobian.shape[0]):
            try:
                out[k] = np.linalg.solve(jacobian[k], rhs[k])
            except np.linalg.LinAlgError:
                out[k] = np.nan
        return out


# ---------------------------------------------------------------------------
# Batched Newton iteration and gmin continuation
# ---------------------------------------------------------------------------

def newton_batch(
    system: MNASystem,
    x0: np.ndarray,
    b: np.ndarray,
    options: NewtonOptions | None = None,
    gmin: float = 0.0,
    g_extra: np.ndarray | None = None,
    i_extra: np.ndarray | None = None,
    g_base: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Damped Newton on B stacked bias points.

    Returns ``(x, converged)`` where ``x`` is ``(B, size)`` and
    ``converged`` a boolean ``(B,)`` mask.  Unconverged entries of ``x``
    hold whatever the last iteration produced — callers are expected to
    discard them (the continuation keeps the previous gmin solution,
    exactly like the scalar path's exception handling).

    The per-point arithmetic replicates :meth:`MNASystem.solve_newton`:
    identical damping schedule, identical convergence test, and device
    stamps accumulated in the same order, so a point that converges here
    follows the same trajectory it would have followed alone.
    """
    opts = options or NewtonOptions()
    g = (
        g_base
        if g_base is not None
        else system.base_matrix(gmin=gmin, g_extra=g_extra)
    )
    n_batch = x0.shape[0]
    n_nodes = system.n_nodes
    x = x0.copy()
    converged = np.zeros(n_batch, dtype=bool)
    active = np.arange(n_batch)
    for iteration in range(opts.max_iterations):
        # Skip the fancy-index copies while every point is still active
        # (the common case: most steps/rungs converge together).
        full = active.size == n_batch
        xa = x if full else x[active]
        i_dev, j_dev = device_contributions_batch(system, xa)
        residual = xa @ g.T + i_dev - (b if full else b[active])
        if i_extra is not None:
            residual = residual + (i_extra if full else i_extra[active])
        jacobian = g[None, :, :] + j_dev
        delta = _solve_stack(jacobian, -residual)
        # Per-point voltage limiting on node unknowns, shrinking with
        # the iteration count (same schedule as the scalar solver).
        limit = opts.v_limit_step / (1 + iteration // 60)
        if n_nodes:
            worst = np.max(np.abs(delta[:, :n_nodes]), axis=1)
        else:
            worst = np.zeros(len(active))
        over = worst > limit
        if np.any(over):
            scale = np.ones(len(active))
            scale[over] = limit / worst[over]
            delta = delta * scale[:, None]
        x_new = xa + delta
        ok = (
            np.max(np.abs(delta[:, :n_nodes]), axis=1, initial=0.0)
            < opts.v_tolerance
        ) & (np.max(np.abs(residual), axis=1) < opts.residual_tolerance)
        bad = ~np.all(np.isfinite(x_new), axis=1)
        ok &= ~bad
        if full:
            x = x_new
        else:
            x[active] = x_new
        converged[active[ok]] = True
        keep = ~(ok | bad)
        active = active[keep]
        if active.size == 0:
            break
    return x, converged


def continuation_batch(
    system: MNASystem,
    b: np.ndarray,
    x0: np.ndarray,
    options: NewtonOptions | None = None,
    g_extra: np.ndarray | None = None,
    i_extra: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched gmin-stepping continuation (all points per ladder rung).

    Mirrors :meth:`MNASystem.solve_dc_continuation` per point: a point
    that fails at one gmin keeps its previous solution as the starting
    guess for the next rung, and counts as converged iff its final rung
    succeeded.
    """
    opts = options or NewtonOptions()
    x = x0.copy()
    converged = np.ones(x.shape[0], dtype=bool)
    for gmin in opts.gmin_steps:
        x_new, ok = newton_batch(
            system, x, b, options=opts, gmin=gmin,
            g_extra=g_extra, i_extra=i_extra,
        )
        x = np.where(ok[:, None], x_new, x)
        converged = ok
    return x, converged


# ---------------------------------------------------------------------------
# DC sweep entry point
# ---------------------------------------------------------------------------

#: Newton-schedule overrides for ``mode="fast"``: a looser damping limit
#: and a two-rung gmin ladder.  From the heuristic warm start the full
#: five-rung cold-start ladder is homotopy overkill; any point that
#: still fails is re-run on the exact sequential schedule.
_FAST_V_LIMIT = 0.45
_FAST_GMIN_STEPS = (1e-5, 1e-12)


def heuristic_initial_guess(
    system: MNASystem,
    bias_points: Sequence[BiasPoint],
    t: float = 0.0,
) -> np.ndarray:
    """Cheap warm start: rail-pinned sources, mid-rail floating nodes.

    Nodes driven directly by a grounded voltage source start at that
    source's level (per bias point); every other node starts at half the
    largest source magnitude.  This skips most of the voltage-limited
    cold march from zero without any extra device evaluations.
    """
    levels = np.zeros((len(bias_points), len(system.vsource_names)))
    for j, name in enumerate(system.vsource_names):
        waveform = system.circuit.vsources[name].waveform
        for k, point in enumerate(bias_points):
            levels[k, j] = point.get(name, waveform(t))
    mid = 0.5 * np.max(np.abs(levels), initial=0.0)
    x = np.full((len(bias_points), system.size), mid)
    x[:, system.n_nodes:] = 0.0
    for j, name in enumerate(system.vsource_names):
        src = system.circuit.vsources[name]
        pos = system._index(src.pos)
        if pos >= 0 and system._index(src.neg) < 0:
            x[:, pos] = levels[:, j]
    return x

@dataclasses.dataclass
class DCSweepResult:
    """Stacked DC solutions over B bias points.

    Attributes:
        bias_points: The bias points, in solve order.
        x: Solution stack, shape ``(B, size)``.
        converged: Per-point convergence flags, shape ``(B,)``.
        node_index: Node name -> column in ``x``.
        n_nodes: Number of node unknowns (source currents follow).
        vsource_names: Source names for the branch-current columns.
    """

    bias_points: tuple[BiasPoint, ...]
    x: np.ndarray
    converged: np.ndarray
    node_index: dict[str, int]
    n_nodes: int
    vsource_names: list[str]

    def __len__(self) -> int:
        return self.x.shape[0]

    def voltages(self, node: str) -> np.ndarray:
        """Voltage of ``node`` at every bias point, shape ``(B,)``."""
        if Circuit.is_ground(node):
            return np.zeros(len(self))
        return self.x[:, self.node_index[node]]

    def source_currents(self, source_name: str) -> np.ndarray:
        """Branch current of one source at every point (SPICE sign)."""
        k = self.vsource_names.index(source_name)
        return self.x[:, self.n_nodes + k]

    def supply_currents(self, source_name: str = "vdd") -> np.ndarray:
        """|branch current| — the IDDQ observable, shape ``(B,)``."""
        return np.abs(self.source_currents(source_name))

    def point(self, k: int) -> OperatingPoint:
        """Materialise one bias point as a scalar operating point."""
        return OperatingPoint(
            voltages={
                name: float(self.x[k, col])
                for name, col in self.node_index.items()
            },
            source_currents={
                name: float(self.x[k, self.n_nodes + j])
                for j, name in enumerate(self.vsource_names)
            },
        )

    def operating_points(self) -> list[OperatingPoint]:
        return [self.point(k) for k in range(len(self))]


def solve_dc_sweep(
    circuit: Circuit,
    bias_points: Sequence[BiasPoint],
    t: float = 0.0,
    x0: np.ndarray | None = None,
    options: NewtonOptions | None = None,
    system: MNASystem | None = None,
    mode: str = "exact",
    raise_on_failure: bool = True,
) -> DCSweepResult:
    """Solve the DC operating point at B independent bias points at once.

    Args:
        circuit: The circuit (shared topology across all points).
        bias_points: One mapping per point of voltage-source name ->
            DC level; unnamed sources keep their own waveform value at
            time ``t``.
        t: Waveform evaluation time for non-overridden sources.
        x0: Optional initial guess — ``(size,)`` broadcast to every
            point, or ``(B, size)`` per point; defaults to zeros (the
            same cold start as :func:`repro.spice.dc.solve_dc`).
        options: Newton options.
        system: Pre-built :class:`MNASystem` to amortise assembly.
        mode: ``"exact"`` (default) runs every point through the full
            cold-start gmin ladder with the scalar solver's damping —
            per-point identical (bit-level, in practice) to calling
            :func:`repro.spice.dc.solve_dc` at each point.  ``"fast"``
            combines the heuristic warm start with a shortened ladder
            and looser damping; points that fail are transparently
            re-run on the exact schedule.  Fast mode converges to the
            same operating points to well below 1e-9 V on library-cell
            workloads, but on defect-bistable circuits (e.g. a CG
            gate-oxide short in a series stack) it may select a
            different — equally valid — DC branch than the sequential
            path; use ``"exact"`` when legacy-path determinism matters.
        raise_on_failure: Raise :class:`ConvergenceError` naming the
            failed points (default); when False, failed points are
            flagged in :attr:`DCSweepResult.converged` and keep their
            last pre-failure iterate.
    """
    if mode not in ("exact", "fast"):
        raise ValueError(f"unknown mode {mode!r}")
    mna = system if system is not None else MNASystem(circuit)
    opts = options or NewtonOptions()
    n_batch = len(bias_points)
    if n_batch == 0:
        raise ValueError("need at least one bias point")
    source_row = {
        name: mna.n_nodes + k for k, name in enumerate(mna.vsource_names)
    }
    b = np.tile(mna.source_rhs(t), (n_batch, 1))
    for k, point in enumerate(bias_points):
        for name, level in point.items():
            if name not in source_row:
                raise KeyError(f"no voltage source named {name!r}")
            b[k, source_row[name]] = float(level)

    if x0 is None:
        x = np.zeros((n_batch, mna.size))
    else:
        x0 = np.asarray(x0, dtype=float)
        x = (
            np.tile(x0, (n_batch, 1)) if x0.ndim == 1 else x0.copy()
        )

    if mna.is_linear:
        gmin_floor = opts.gmin_steps[-1] if opts.gmin_steps else 0.0
        x = mna.linear_solve(b, gmin_floor)
        converged = np.ones(n_batch, dtype=bool)
    elif mode == "fast":
        fast_opts = dataclasses.replace(
            opts, v_limit_step=_FAST_V_LIMIT, gmin_steps=_FAST_GMIN_STEPS
        )
        if x0 is None:
            x = heuristic_initial_guess(mna, bias_points, t)
        x, converged = continuation_batch(mna, b, x, fast_opts)
        if not np.all(converged):
            # Exact-schedule fallback, batched over the failed subset.
            retry = np.flatnonzero(~converged)
            x_retry, ok_retry = continuation_batch(
                mna, b[retry], np.zeros((retry.size, mna.size)), opts
            )
            x[retry] = np.where(ok_retry[:, None], x_retry, x[retry])
            converged[retry] = ok_retry
    else:
        x, converged = continuation_batch(mna, b, x, opts)

    if raise_on_failure and not np.all(converged):
        failed = np.flatnonzero(~converged)
        raise ConvergenceError(
            f"{failed.size}/{n_batch} bias points failed to converge in "
            f"circuit {mna.circuit.title!r} (indices {failed.tolist()})"
        )
    return DCSweepResult(
        bias_points=tuple(bias_points),
        x=x,
        converged=converged,
        node_index=mna.node_index,
        n_nodes=mna.n_nodes,
        vsource_names=mna.vsource_names,
    )


# ---------------------------------------------------------------------------
# Batched transient sweep
# ---------------------------------------------------------------------------

#: Per-point source override: name -> DC level or full waveform.
SourceOverride = Mapping[str, "float | Waveform"]


def run_transient_sweep(
    circuit: Circuit,
    overrides: Sequence[SourceOverride],
    t_stop: float,
    dt: float,
    options: NewtonOptions | None = None,
    system: MNASystem | None = None,
) -> list[TransientResult]:
    """Integrate B source-drive variants of one circuit in lockstep.

    Each entry of ``overrides`` describes one sweep point as a mapping
    of voltage-source name to either a DC level or a :class:`Waveform`
    substituted for that source's own drive; the circuit topology (and
    every non-overridden source) is shared.  Backward-Euler with one
    batched Newton solve per time step; per-point trajectories match
    :func:`repro.spice.transient.run_transient` run separately on each
    variant.

    Returns one :class:`TransientResult` per override, in order.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    if not overrides:
        raise ValueError("need at least one sweep point")
    mna = system if system is not None else MNASystem(circuit)
    opts = options or NewtonOptions()
    n_batch = len(overrides)
    source_row = {
        name: mna.n_nodes + k for k, name in enumerate(mna.vsource_names)
    }
    resolved: list[list[tuple[int, Waveform | float]]] = []
    for point in overrides:
        entries: list[tuple[int, Waveform | float]] = []
        for name, drive in point.items():
            if name not in source_row:
                raise KeyError(f"no voltage source named {name!r}")
            entries.append((source_row[name], drive))
        resolved.append(entries)

    # Capacitor companion stamp (shared recipe with the scalar
    # integrator), plus a scatter recipe for the history currents that
    # replays the sequential per-capacitor loop order exactly: for each
    # capacitor, subtract at node a then add at node b.
    g_cap, a_idx, b_idx, geq = capacitor_companions(mna, dt)
    hist_cols: list[int] = []
    hist_signs: list[float] = []
    hist_targets: list[int] = []
    for k in range(len(geq)):
        if a_idx[k] >= 0:
            hist_cols.append(k)
            hist_signs.append(-1.0)
            hist_targets.append(int(a_idx[k]))
        if b_idx[k] >= 0:
            hist_cols.append(k)
            hist_signs.append(1.0)
            hist_targets.append(int(b_idx[k]))
    hist_cols_arr = np.asarray(hist_cols, dtype=int)
    hist_signs_arr = np.asarray(hist_signs)
    hist_targets_arr = np.asarray(hist_targets, dtype=int)
    batch_offsets = np.arange(n_batch)[:, None] * mna.size

    def batch_rhs(t: float) -> np.ndarray:
        b = np.tile(mna.source_rhs(t), (n_batch, 1))
        for k, entries in enumerate(resolved):
            for row, drive in entries:
                b[k, row] = (
                    drive(t) if isinstance(drive, Waveform) else float(drive)
                )
        return b

    # Initial condition: batched DC continuation at t = 0 (cold start,
    # no capacitor companions — same as the scalar transient).
    b0 = batch_rhs(0.0)
    x = np.zeros((n_batch, mna.size))
    if mna.is_linear:
        gmin_floor = opts.gmin_steps[-1] if opts.gmin_steps else 0.0
        x = mna.linear_solve(b0, gmin_floor)
    else:
        x, converged = continuation_batch(mna, b0, x, opts)
        if not np.all(converged):
            failed = np.flatnonzero(~converged)
            raise ConvergenceError(
                f"transient sweep DC start failed for points "
                f"{failed.tolist()} in circuit {mna.circuit.title!r}"
            )

    g_base = mna.g_linear + g_cap
    g_base_retry: np.ndarray | None = None
    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    trace = np.empty((n_batch, n_steps + 1, mna.size))
    trace[:, 0] = x

    for step in range(1, n_steps + 1):
        b = batch_rhs(times[step])
        # History currents, scattered in sequential per-capacitor order.
        i_extra = np.zeros((n_batch, mna.size))
        if len(geq):
            va = np.where(a_idx >= 0, x[:, np.clip(a_idx, 0, None)], 0.0)
            vb = np.where(b_idx >= 0, x[:, np.clip(b_idx, 0, None)], 0.0)
            hist = geq[None, :] * (va - vb)
            np.add.at(
                i_extra.reshape(n_batch * mna.size),
                batch_offsets + hist_targets_arr[None, :],
                hist[:, hist_cols_arr] * hist_signs_arr[None, :],
            )
        x_new, ok = newton_batch(
            mna, x, b, options=opts, i_extra=i_extra, g_base=g_base
        )
        if not np.all(ok):
            # Per-point retry with gmin support from the pre-step state,
            # mirroring the scalar transient's ConvergenceError path.
            if g_base_retry is None:
                g_base_retry = g_base.copy()
                idx = np.arange(mna.n_nodes)
                g_base_retry[idx, idx] += 1e-9
            retry = np.flatnonzero(~ok)
            x_retry, ok_retry = newton_batch(
                mna, x[retry], b[retry], options=opts,
                i_extra=i_extra[retry], g_base=g_base_retry,
            )
            if not np.all(ok_retry):
                failed = retry[~ok_retry]
                raise ConvergenceError(
                    f"transient sweep step {step} failed for points "
                    f"{failed.tolist()} in circuit {mna.circuit.title!r}"
                )
            x_new[retry] = x_retry
        x = x_new
        trace[:, step] = x

    results = []
    for k in range(n_batch):
        voltages = {
            name: trace[k, :, col].copy()
            for name, col in mna.node_index.items()
        }
        source_currents = {
            name: trace[k, :, mna.n_nodes + j].copy()
            for j, name in enumerate(mna.vsource_names)
        }
        results.append(
            TransientResult(
                times=times.copy(),
                voltages=voltages,
                source_currents=source_currents,
            )
        )
    return results
