"""Modified nodal analysis (MNA) assembly and Newton iteration.

Unknown vector layout: node voltages (all non-ground nodes in sorted
order) followed by one branch current per voltage source.  Nonlinear
device currents and their Jacobians are evaluated with vectorised
finite differences: devices sharing a compact-model instance are grouped
and evaluated in a single numpy call over a ``(n_devices, 6, 5)``
perturbation tensor (base point + one perturbation per terminal).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.spice.netlist import Circuit, DEVICE_TERMINALS


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge."""


@dataclasses.dataclass
class NewtonOptions:
    """Newton-iteration tuning knobs.

    The gmin continuation ends at 1e-12 S (not zero), the conventional
    SPICE floor: it adds at most ~1 pA per volt of bias — far below every
    leakage observable here — and keeps hard fault-contention cases
    solvable.
    """

    max_iterations: int = 300
    v_tolerance: float = 1e-7
    residual_tolerance: float = 1e-10
    v_limit_step: float = 0.15
    gmin_steps: tuple[float, ...] = (1e-3, 1e-5, 1e-7, 1e-9, 1e-12)


_FD_STEP = 1e-5
"""Finite-difference voltage perturbation for device Jacobians [V]."""


class MNASystem:
    """Assembled MNA representation of a :class:`Circuit`."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.node_names = circuit.nodes()
        self.node_index = {n: k for k, n in enumerate(self.node_names)}
        self.vsource_names = sorted(circuit.vsources)
        self.n_nodes = len(self.node_names)
        self.size = self.n_nodes + len(self.vsource_names)
        self._build_linear()
        self._build_device_groups()

    # ------------------------------------------------------------------
    def _index(self, node: str) -> int:
        """Index of a node in the unknown vector, -1 for ground."""
        if Circuit.is_ground(node):
            return -1
        return self.node_index[node]

    def _build_linear(self) -> None:
        """Stamp resistors and voltage-source incidence (time-invariant).

        The stamp is assembled exactly once, as a sparse triplet list
        (kept for inspection / sparse factorisation) plus the dense
        matrix every Newton iteration reads.  Derived per-``gmin`` base
        matrices and the device-free direct factorisation are cached
        lazily — see :meth:`base_matrix` and :meth:`linear_solve`.
        """
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def stamp(r: int, c: int, v: float) -> None:
            rows.append(r)
            cols.append(c)
            vals.append(v)

        for r in self.circuit.resistors.values():
            conductance = 1.0 / r.resistance
            a, b = self._index(r.a), self._index(r.b)
            if a >= 0:
                stamp(a, a, conductance)
            if b >= 0:
                stamp(b, b, conductance)
            if a >= 0 and b >= 0:
                stamp(a, b, -conductance)
                stamp(b, a, -conductance)
        for k, name in enumerate(self.vsource_names):
            src = self.circuit.vsources[name]
            row = self.n_nodes + k
            p, n = self._index(src.pos), self._index(src.neg)
            if p >= 0:
                stamp(row, p, 1.0)
                stamp(p, row, 1.0)
            if n >= 0:
                stamp(row, n, -1.0)
                stamp(n, row, -1.0)
        self.linear_triplets = (
            np.asarray(rows, dtype=int),
            np.asarray(cols, dtype=int),
            np.asarray(vals, dtype=float),
        )
        g = np.zeros((self.size, self.size))
        np.add.at(g, (self.linear_triplets[0], self.linear_triplets[1]),
                  self.linear_triplets[2])
        self.g_linear = g
        self._gmin_bases: dict[float, np.ndarray] = {0.0: g}
        self._linear_factor = None

    # ------------------------------------------------------------------
    @property
    def is_linear(self) -> bool:
        """True when the circuit has no nonlinear devices."""
        return not self.circuit.devices

    def base_matrix(
        self, gmin: float = 0.0, g_extra: np.ndarray | None = None
    ) -> np.ndarray:
        """Linear-part system matrix ``g_linear (+ g_extra) (+ gmin)``.

        The pure ``gmin`` variants are cached (the gmin ladder revisits
        the same handful of values on every solve, and sweeps reuse them
        across every bias point); callers must treat the returned array
        as read-only.  With ``g_extra`` a fresh sum is returned.
        """
        if g_extra is None:
            cached = self._gmin_bases.get(gmin)
            if cached is None:
                cached = self.g_linear.copy()
                idx = np.arange(self.n_nodes)
                cached[idx, idx] += gmin
                self._gmin_bases[gmin] = cached
            return cached
        g = self.g_linear + g_extra
        if gmin > 0.0:
            idx = np.arange(self.n_nodes)
            g[idx, idx] += gmin
        return g

    def linear_solve(self, b: np.ndarray, gmin: float) -> np.ndarray:
        """Direct solve of the device-free system (prefactorised).

        Only valid when :attr:`is_linear`; the LU factorisation of the
        (sparse) stamp at the given ``gmin`` floor is computed once per
        system and reused for every right-hand side — DC sweeps on
        linear circuits skip Newton iteration entirely.
        """
        if not self.is_linear:
            raise ValueError("linear_solve requires a device-free circuit")
        if self._linear_factor is None or self._linear_factor[0] != gmin:
            matrix = self.base_matrix(gmin)
            try:
                from scipy.sparse import csc_matrix
                from scipy.sparse.linalg import splu

                lu = splu(csc_matrix(matrix))
                solve = lu.solve
            except ImportError:  # pragma: no cover - scipy is baked in
                import functools

                solve = functools.partial(np.linalg.solve, matrix)
            self._linear_factor = (gmin, solve)
        b = np.asarray(b, dtype=float)
        if b.ndim == 1:
            return self._linear_factor[1](b)
        # Batched right-hand sides: factor once, solve columns together.
        return self._linear_factor[1](b.T).T

    def _build_device_groups(self) -> None:
        """Group devices by compact-model identity for vectorised eval.

        Alongside the terminal-index matrix, each group precomputes the
        scatter-add index arrays :meth:`device_contributions` needs:
        ground terminals (index -1) are masked out once here, and the
        Jacobian targets are flattened ``row * size + col`` positions
        so the whole stamp is two ``np.add.at`` calls per group.
        """
        groups: dict[int, list[str]] = {}
        for name, dev in self.circuit.devices.items():
            groups.setdefault(id(dev.model), []).append(name)
        self.device_groups: list[tuple] = []
        for names in groups.values():
            names.sort()
            model = self.circuit.devices[names[0]].model
            n = len(names)
            index_matrix = np.empty((n, 5), dtype=int)
            for i, dev_name in enumerate(names):
                dev = self.circuit.devices[dev_name]
                for j, term in enumerate(DEVICE_TERMINALS):
                    index_matrix[i, j] = self._index(getattr(dev, term))
            i_valid = index_matrix >= 0  # aligned with i_base[dev, t]
            i_targets = index_matrix[i_valid]
            # didv[dev, j_term, t_term] stamps into
            # (row, col) = (rows[t_term], rows[j_term]).
            row_t = np.broadcast_to(index_matrix[:, None, :], (n, 5, 5))
            row_j = np.broadcast_to(index_matrix[:, :, None], (n, 5, 5))
            j_valid = (row_t >= 0) & (row_j >= 0)
            j_targets = (row_t * self.size + row_j)[j_valid]
            # Ground-safe gather indices, precomputed once so per-call
            # voltage gathers skip the clip (the batched engine runs
            # thousands of gathers per sweep).
            index_clipped = np.clip(index_matrix, 0, None)
            self.device_groups.append(
                (model, names, index_matrix, i_valid, i_targets,
                 j_valid, j_targets, index_clipped)
            )

    # ------------------------------------------------------------------
    def source_rhs(self, t: float) -> np.ndarray:
        """Right-hand side from independent sources at time ``t``."""
        b = np.zeros(self.size)
        for k, name in enumerate(self.vsource_names):
            b[self.n_nodes + k] = self.circuit.vsources[name].waveform(t)
        for src in self.circuit.isources.values():
            value = src.waveform(t)
            p, n = self._index(src.pos), self._index(src.neg)
            if p >= 0:
                b[p] -= value
            if n >= 0:
                b[n] += value
        return b

    def _terminal_voltages(
        self, x: np.ndarray, index_matrix: np.ndarray
    ) -> np.ndarray:
        """Gather device terminal voltages from the unknown vector."""
        volts = np.where(
            index_matrix >= 0, x[np.clip(index_matrix, 0, None)], 0.0
        )
        return volts

    def device_contributions(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nonlinear current vector and Jacobian at solution estimate ``x``.

        Returns ``(i_dev, j_dev)`` where ``i_dev`` has the device currents
        summed into node rows, and ``j_dev`` the corresponding
        conductance Jacobian.
        """
        i_dev = np.zeros(self.size)
        j_dev = np.zeros((self.size, self.size))
        j_flat = j_dev.ravel()
        for (model, _names, index_matrix, i_valid, i_targets,
             j_valid, j_targets, _index_clipped) in self.device_groups:
            base = self._terminal_voltages(x, index_matrix)  # (n, 5)
            n = base.shape[0]
            # Perturbation tensor: slot 0 is the base point, slots 1..5
            # perturb one terminal each (only where the terminal is a real
            # unknown; ground terminals keep zero volts and need no column).
            pert = np.broadcast_to(base[:, None, :], (n, 6, 5)).copy()
            for j in range(5):
                pert[:, j + 1, j] += _FD_STEP
            currents = model.terminal_current_matrix(pert)  # (n, 6, 5)
            i_base = currents[:, 0, :]
            didv = (currents[:, 1:, :] - currents[:, None, 0, :]) / _FD_STEP
            # didv[k, j, t]: d(I into terminal t)/d(V of terminal j).
            # Scatter-add over the precomputed index arrays (duplicate
            # node targets accumulate, exactly like the stamping loop).
            np.add.at(i_dev, i_targets, i_base[i_valid])
            np.add.at(j_flat, j_targets, didv[j_valid])
        return i_dev, j_dev

    # ------------------------------------------------------------------
    def solve_newton(
        self,
        x0: np.ndarray,
        b: np.ndarray,
        g_extra: np.ndarray | None = None,
        i_extra: np.ndarray | None = None,
        options: NewtonOptions | None = None,
        gmin: float = 0.0,
        g_base: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve ``G x + I_dev(x) - b = 0`` by damped Newton iteration.

        Args:
            x0: Initial guess.
            b: Source right-hand side.
            g_extra: Additional linear conductances (capacitor companions).
            i_extra: Additional constant currents (companion histories).
            options: Newton options.
            gmin: Conductance from every node to ground (homotopy aid).
            g_base: Precomputed full linear base (``g_linear + g_extra``
                with ``gmin`` already applied); overrides the assembly
                from ``g_extra``/``gmin`` so transient loops can stamp
                the companion sum once instead of once per step.
        """
        opts = options or NewtonOptions()
        g = (
            g_base
            if g_base is not None
            else self.base_matrix(gmin=gmin, g_extra=g_extra)
        )
        x = x0.copy()
        for iteration in range(opts.max_iterations):
            i_dev, j_dev = self.device_contributions(x)
            residual = g @ x + i_dev - b
            if i_extra is not None:
                residual = residual + i_extra
            jacobian = g + j_dev
            try:
                delta = np.linalg.solve(jacobian, -residual)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular Jacobian in circuit {self.circuit.title!r}"
                ) from exc
            # Voltage limiting on node unknowns only.  The limit shrinks
            # as iterations accumulate, which breaks the two-point limit
            # cycles steep exponential devices can otherwise sustain.
            limit = opts.v_limit_step / (1 + iteration // 60)
            v_part = delta[: self.n_nodes]
            worst = np.max(np.abs(v_part)) if v_part.size else 0.0
            if worst > limit:
                delta = delta * (limit / worst)
            x = x + delta
            if (
                np.max(np.abs(delta[: self.n_nodes]), initial=0.0)
                < opts.v_tolerance
                and np.max(np.abs(residual)) < opts.residual_tolerance
            ):
                return x
        raise ConvergenceError(
            f"Newton failed to converge in {opts.max_iterations} iterations "
            f"(circuit {self.circuit.title!r}, gmin={gmin:g})"
        )

    def solve_dc_continuation(
        self,
        t: float = 0.0,
        x0: np.ndarray | None = None,
        options: NewtonOptions | None = None,
    ) -> np.ndarray:
        """DC operating point with gmin stepping.

        Starts from a heavily damped system (large gmin to ground pulls
        every node toward a solvable state) and relaxes gmin toward zero,
        reusing each solution as the next initial guess.
        """
        opts = options or NewtonOptions()
        b = self.source_rhs(t)
        if self.is_linear:
            # Device-free circuit: one prefactorised direct solve at the
            # gmin floor replaces the whole Newton/gmin ladder.
            gmin_floor = opts.gmin_steps[-1] if opts.gmin_steps else 0.0
            try:
                return self.linear_solve(b, gmin_floor)
            except RuntimeError as exc:
                raise ConvergenceError(
                    f"singular linear system in circuit "
                    f"{self.circuit.title!r}"
                ) from exc
        x = x0.copy() if x0 is not None else np.zeros(self.size)
        last_error: Exception | None = None
        for gmin in opts.gmin_steps:
            try:
                x = self.solve_newton(x, b, options=opts, gmin=gmin)
                last_error = None
            except ConvergenceError as exc:
                last_error = exc
        if last_error is not None:
            raise last_error
        return x
