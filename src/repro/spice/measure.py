"""Measurement utilities: crossings, propagation delay, leakage, swing."""

from __future__ import annotations

import numpy as np

from repro.spice.transient import TransientResult


def threshold_crossings(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    direction: str = "both",
) -> list[float]:
    """Interpolated times where ``values`` crosses ``threshold``.

    Args:
        direction: 'rise', 'fall' or 'both'.
    """
    if direction not in ("rise", "fall", "both"):
        raise ValueError(f"bad direction {direction!r}")
    crossings: list[float] = []
    below = values < threshold
    for k in range(1, len(values)):
        if below[k - 1] == below[k]:
            continue
        rising = below[k - 1] and not below[k]
        if direction == "rise" and not rising:
            continue
        if direction == "fall" and rising:
            continue
        v0, v1 = values[k - 1], values[k]
        t0, t1 = times[k - 1], times[k]
        frac = (threshold - v0) / (v1 - v0)
        crossings.append(float(t0 + frac * (t1 - t0)))
    return crossings


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
    edge: str = "both",
) -> float:
    """Worst-case 50 %-to-50 % propagation delay.

    Pairs each input edge with the first subsequent output crossing and
    returns the maximum delay over the requested ``edge`` kinds ('rise'
    and 'fall' refer to the *input* edge).  Returns ``inf`` when an input
    edge never produces an output response — the transient signature of a
    stuck (non-functional) gate.
    """
    threshold = vdd / 2.0
    v_in = result.voltage(input_node)
    v_out = result.voltage(output_node)
    kinds = ("rise", "fall") if edge == "both" else (edge,)
    worst = 0.0
    for kind in kinds:
        in_edges = threshold_crossings(
            result.times, v_in, threshold, direction=kind
        )
        out_edges = threshold_crossings(result.times, v_out, threshold)
        for t_in in in_edges:
            later = [t for t in out_edges if t > t_in]
            if not later:
                return float("inf")
            worst = max(worst, later[0] - t_in)
    return worst


def output_swing(result: TransientResult, node: str) -> tuple[float, float]:
    """(min, max) voltage reached at ``node`` over the run."""
    v = result.voltage(node)
    return float(np.min(v)), float(np.max(v))


def settles_to(
    result: TransientResult,
    node: str,
    level: float,
    tolerance: float,
    tail_fraction: float = 0.05,
) -> bool:
    """True when the node's trailing average is within ``tolerance`` of
    ``level``."""
    v = result.voltage(node)
    tail = max(1, int(len(v) * tail_fraction))
    return abs(float(np.mean(v[-tail:])) - level) <= tolerance


def logic_level(
    voltage: float, vdd: float, low_fraction: float = 0.35,
    high_fraction: float = 0.65,
) -> int | None:
    """Interpret a node voltage as a logic value.

    Returns 0/1, or ``None`` in the indeterminate band — which a tester
    flags as a failing output.
    """
    if voltage <= vdd * low_fraction:
        return 0
    if voltage >= vdd * high_fraction:
        return 1
    return None
