"""Measurement utilities: crossings, propagation delay, leakage, swing.

Crossing detection is fully vectorized (one boolean diff over the whole
trace instead of a Python loop per sample), and the ``*_currents`` /
``propagation_delays`` helpers extract measurements over a whole sweep
dimension at once — reporting should not dominate a batched solver.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.spice.transient import TransientResult


def threshold_crossings(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    direction: str = "both",
) -> list[float]:
    """Interpolated times where ``values`` crosses ``threshold``.

    Args:
        direction: 'rise', 'fall' or 'both'.
    """
    if direction not in ("rise", "fall", "both"):
        raise ValueError(f"bad direction {direction!r}")
    values = np.asarray(values)
    times = np.asarray(times)
    below = values < threshold
    k = np.flatnonzero(below[:-1] != below[1:]) + 1
    if direction == "rise":
        k = k[below[k - 1]]
    elif direction == "fall":
        k = k[~below[k - 1]]
    if k.size == 0:
        return []
    v0, v1 = values[k - 1], values[k]
    t0, t1 = times[k - 1], times[k]
    frac = (threshold - v0) / (v1 - v0)
    return [float(t) for t in t0 + frac * (t1 - t0)]


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
    edge: str = "both",
) -> float:
    """Worst-case 50 %-to-50 % propagation delay.

    Pairs each input edge with the first subsequent output crossing and
    returns the maximum delay over the requested ``edge`` kinds ('rise'
    and 'fall' refer to the *input* edge).  Returns ``inf`` when an input
    edge never produces an output response — the transient signature of a
    stuck (non-functional) gate.
    """
    threshold = vdd / 2.0
    v_in = result.voltage(input_node)
    v_out = result.voltage(output_node)
    kinds = ("rise", "fall") if edge == "both" else (edge,)
    worst = 0.0
    for kind in kinds:
        in_edges = threshold_crossings(
            result.times, v_in, threshold, direction=kind
        )
        out_edges = threshold_crossings(result.times, v_out, threshold)
        for t_in in in_edges:
            later = [t for t in out_edges if t > t_in]
            if not later:
                return float("inf")
            worst = max(worst, later[0] - t_in)
    return worst


def output_swing(result: TransientResult, node: str) -> tuple[float, float]:
    """(min, max) voltage reached at ``node`` over the run."""
    v = result.voltage(node)
    return float(np.min(v)), float(np.max(v))


def settles_to(
    result: TransientResult,
    node: str,
    level: float,
    tolerance: float,
    tail_fraction: float = 0.05,
) -> bool:
    """True when the node's trailing average is within ``tolerance`` of
    ``level``."""
    v = result.voltage(node)
    tail = max(1, int(len(v) * tail_fraction))
    return abs(float(np.mean(v[-tail:])) - level) <= tolerance


def final_supply_currents(
    results: Sequence[TransientResult],
    source_name: str = "vdd",
    tail_fraction: float = 0.05,
) -> np.ndarray:
    """Tail-averaged |supply current| of every sweep point at once.

    Vectorized over the sweep dimension: the (lockstep) traces stack
    into one ``(B, n)`` array and the tail mean reduces along the time
    axis in a single call — the batched counterpart of calling
    :meth:`TransientResult.final_supply_current` per point.
    """
    stacked = np.abs(
        np.stack([r.source_currents[source_name] for r in results])
    )
    tail = max(1, int(stacked.shape[1] * tail_fraction))
    return np.mean(stacked[:, -tail:], axis=1)


def propagation_delays(
    results: Sequence[TransientResult],
    input_node: str,
    output_node: str,
    vdd: float,
    edge: str = "both",
) -> np.ndarray:
    """Worst-case propagation delay of every sweep point, as an array."""
    return np.asarray([
        propagation_delay(r, input_node, output_node, vdd, edge=edge)
        for r in results
    ])


def logic_level(
    voltage: float, vdd: float, low_fraction: float = 0.35,
    high_fraction: float = 0.65,
) -> int | None:
    """Interpret a node voltage as a logic value.

    Returns 0/1, or ``None`` in the indeterminate band — which a tester
    flags as a failing output.
    """
    if voltage <= vdd * low_fraction:
        return 0
    if voltage >= vdd * high_fraction:
        return 1
    return None
