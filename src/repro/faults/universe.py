"""Fault-universe abstraction and the string-keyed universe registry.

A :class:`FaultUniverse` is one closed set of fault-shaped objects at a
fixed abstraction layer, with a uniform protocol:

* :meth:`~FaultUniverse.enumerate` — every single-fault site of a
  network, in deterministic order;
* :meth:`~FaultUniverse.collapse` — the equivalence/benignity-pruned
  list actually targeted by test generation;
* :meth:`~FaultUniverse.lower` / :meth:`~FaultUniverse.image` — the
  cross-layer hops of the paper's methodology (fabrication mechanism →
  device defect → circuit fault → logic fault model);
* :meth:`~FaultUniverse.stats` — a census record for reports and the
  ``python -m repro faults census`` CLI.

Universes register under a string key (:func:`register_universe`) so
campaign tasks, the CLI and tests can select them by name
(:func:`get_universe`).  Adding a new fault class to the repo is one
registry entry — implement the protocol and register it; the ATPG,
campaign and census layers pick it up by name.

The four layers, ordered from fabrication physics to ATPG abstraction,
are listed in :data:`LAYERS`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

from repro.logic.network import Network

#: Abstraction layers, ordered from fabrication physics to ATPG.
LAYERS: tuple[str, ...] = ("mechanism", "device", "circuit", "logic")


class ReproDeprecationWarning(DeprecationWarning):
    """First-party deprecation category.

    Every deprecation shim in this repo warns with this category so the
    test suite can escalate *first-party* shim use to an error (see
    ``pytest.ini``) without touching third-party DeprecationWarnings.
    """


@dataclasses.dataclass(frozen=True)
class UniverseStats:
    """Census record of one universe over one network.

    Attributes:
        universe: Registry name.
        layer: One of :data:`LAYERS`.
        n_faults: Full enumeration size (before collapsing).
        n_collapsed: Size after :meth:`FaultUniverse.collapse`.
        by_kind: Deterministic ``(kind, count)`` breakdown of the full
            enumeration, sorted by kind.
    """

    universe: str
    layer: str
    n_faults: int
    n_collapsed: int
    by_kind: tuple[tuple[str, int], ...]


class FaultUniverse(abc.ABC):
    """One registered fault universe (see the module docstring).

    Subclasses set :attr:`name`, :attr:`layer` and :attr:`description`
    and implement :meth:`enumerate`; the remaining protocol has
    universe-agnostic defaults (identity collapse, no lowering).
    """

    #: Registry key (``get_universe(name)``).
    name: str = ""
    #: One of :data:`LAYERS`.
    layer: str = "logic"
    #: One-line description for ``python -m repro faults list``.
    description: str = ""

    @abc.abstractmethod
    def enumerate(self, network: Network) -> list:
        """Every single-fault site of ``network``, deterministically
        ordered (the same network always yields the same list)."""

    def collapse(self, network: Network, faults: Sequence | None = None) -> list:
        """Equivalence-collapsed fault list.

        With ``faults`` given, prunes that list; otherwise collapses the
        canonical enumeration.  The default is the identity (universes
        without collapsing rules).
        """
        return list(self.enumerate(network) if faults is None else faults)

    def lower(self, network: Network, fault) -> list[tuple[str, object]]:
        """One hop toward the logic layer.

        Returns ``(universe_name, fault)`` pairs — the images of
        ``fault`` one abstraction layer down.  Logic-layer universes
        return ``[]`` (they are the fixed points of lowering).  A
        non-logic fault with no representation in the repo's fault
        vocabulary also lowers to ``[]`` (e.g. an interconnect bridge,
        which needs analog bridging analysis).
        """
        del network, fault
        return []

    def image(self, network: Network, fault) -> list:
        """Transitive logic-layer image of ``fault``.

        Walks :meth:`lower` hops until every branch reaches a logic
        universe; returns the deduplicated logic faults in first-seen
        order.  A logic fault is its own image.
        """
        if self.layer == "logic":
            return [fault]
        frontier: list[tuple[str, object]] = [(self.name, fault)]
        out: list = []
        seen: set = set()
        while frontier:
            universe_name, f = frontier.pop(0)
            universe = get_universe(universe_name)
            if universe.layer == "logic":
                if f not in seen:
                    seen.add(f)
                    out.append(f)
                continue
            frontier.extend(universe.lower(network, f))
        return out

    def fault_name(self, fault) -> str:
        """Stable display name of one fault."""
        name = getattr(fault, "name", None)
        return name if isinstance(name, str) else str(fault)

    def kind_of(self, fault) -> str:
        """Census bucket of one fault (override for finer breakdowns)."""
        return type(fault).__name__

    def stats(self, network: Network) -> UniverseStats:
        """Census of this universe over ``network``."""
        faults = self.enumerate(network)
        by_kind: dict[str, int] = {}
        for fault in faults:
            kind = self.kind_of(fault)
            by_kind[kind] = by_kind.get(kind, 0) + 1
        return UniverseStats(
            universe=self.name,
            layer=self.layer,
            n_faults=len(faults),
            n_collapsed=len(self.collapse(network)),
            by_kind=tuple(sorted(by_kind.items())),
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, FaultUniverse] = {}


def register_universe(
    name: str, universe: FaultUniverse, replace: bool = False
) -> FaultUniverse:
    """Register ``universe`` under ``name``.

    Re-registering an existing name raises unless ``replace`` is set
    (tests and downstream plugins may override built-ins).  Returns the
    universe so the call composes with assignment.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"fault universe {name!r} is already registered; "
            f"pass replace=True to override"
        )
    if universe.layer not in LAYERS:
        raise ValueError(
            f"universe {name!r} has unknown layer {universe.layer!r}; "
            f"expected one of {LAYERS}"
        )
    universe.name = name
    _REGISTRY[name] = universe
    return universe


def get_universe(name: str) -> FaultUniverse:
    """Look up a registered universe by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown fault universe {name!r}; "
            f"available: {universe_names()}"
        ) from None


def universe_names() -> list[str]:
    """Registered universe names, ordered physics-first.

    Sorted by (layer depth, name) so censuses and listings follow the
    paper's narrative: fabrication mechanisms down to logic models.
    """
    return sorted(
        _REGISTRY, key=lambda n: (LAYERS.index(_REGISTRY[n].layer), n)
    )
