"""repro.faults: the unified cross-layer fault-universe API.

One front door for everything fault-shaped, from fabrication physics to
ATPG.  The paper's central move — mapping Table I fabrication defects
through device-level I-V signatures onto gate-level fault models — is
encoded as a registry of :class:`FaultUniverse` objects with uniform
``enumerate`` / ``collapse`` / ``lower`` / ``image`` / ``stats``
protocols:

=================   =========  ==============================================
universe            layer      contents
=================   =========  ==============================================
defect_mechanism    mechanism  Table I defect sites per mapped gate instance
device_defect       device     channel break / GOS / drift per transistor
circuit_fault       circuit    injectable SPICE descriptors (Section IV/V)
stuck_at            logic      classic s-a-0/1 with structural collapsing
polarity            logic      stuck-at n-/p-type on DP gates (Section V-B)
stuck_open          logic      channel-break faults (Section V-C)
=================   =========  ==============================================

Campaign tasks, the ATPG entry points and ``python -m repro faults``
all select universes by name::

    from repro.faults import get_universe

    universe = get_universe("stuck_at")
    faults = universe.collapse(network)       # the ATPG target list
    census = universe.stats(network)          # counts before/after collapse

Cross-layer hops follow the paper's lowering chain
(DefectMechanism → DeviceDefect → CircuitFault → logic fault)::

    mechanism = get_universe("defect_mechanism")
    for site in mechanism.enumerate(network):
        logic_faults = mechanism.image(network, site)

A new fault class lands as a single :func:`register_universe` entry;
see ``docs/FAULT_UNIVERSES.md`` for the protocol walkthrough.

The legacy taxonomies stay importable: the gate-level classes moved
here from ``repro.atpg.faults`` (now a deprecation shim), while the
device/circuit descriptor modules (:mod:`repro.device.defects`,
:mod:`repro.core.fault_models`, :mod:`repro.core.defects`) remain
canonical and are wrapped by the registered universes.
"""

from repro.faults.universe import (
    FaultUniverse,
    LAYERS,
    ReproDeprecationWarning,
    UniverseStats,
    get_universe,
    register_universe,
    universe_names,
)
from repro.faults.logic import (
    PolarityFault,
    PolarityUniverse,
    StuckAtFault,
    StuckAtUniverse,
    StuckOpenFault,
    StuckOpenUniverse,
    polarity_faults,
    stuck_at_faults,
    stuck_open_faults,
)
from repro.faults.records import (
    FAULT_TYPE_LABELS,
    PolarityFaultRecord,
)
from repro.faults.physical import (
    CircuitFaultSite,
    CircuitFaultUniverse,
    DEFAULT_DRIFT_FACTOR,
    DEFAULT_VCUT,
    DefectMechanismUniverse,
    DeviceDefectUniverse,
    DeviceFault,
    MechanismFault,
    circuit_faults_for_cell,
    circuit_faults_for_site,
    device_defects_for_site,
    switch_state_for_site,
)

__all__ = [
    "CircuitFaultSite",
    "CircuitFaultUniverse",
    "DEFAULT_DRIFT_FACTOR",
    "DEFAULT_VCUT",
    "DefectMechanismUniverse",
    "DeviceDefectUniverse",
    "DeviceFault",
    "FAULT_TYPE_LABELS",
    "FaultUniverse",
    "LAYERS",
    "MechanismFault",
    "PolarityFault",
    "PolarityFaultRecord",
    "PolarityUniverse",
    "ReproDeprecationWarning",
    "StuckAtFault",
    "StuckAtUniverse",
    "StuckOpenFault",
    "StuckOpenUniverse",
    "UniverseStats",
    "circuit_faults_for_cell",
    "circuit_faults_for_site",
    "device_defects_for_site",
    "get_universe",
    "polarity_faults",
    "register_universe",
    "stuck_at_faults",
    "stuck_open_faults",
    "switch_state_for_site",
    "universe_names",
]
