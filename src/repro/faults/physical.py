"""Physical fault universes: fabrication mechanism → device → circuit.

This module re-expresses the repo's two physical taxonomies as
registered universes and implements the paper's central mapping as
:meth:`~repro.faults.universe.FaultUniverse.lower` hops:

* ``defect_mechanism`` (layer *mechanism*) — Table I defect sites
  (:func:`repro.core.defects.enumerate_defect_sites`) instantiated per
  mapped gate of a network;
* ``device_defect`` (layer *device*) — the device-internal defects of
  :mod:`repro.device.defects` (channel break, GOS at each gate,
  parameter drift) per transistor of every mapped gate;
* ``circuit_fault`` (layer *circuit*) — the injectable descriptors of
  :mod:`repro.core.fault_models`, derived by lowering every mechanism
  site (plus the drive-drift delay-fault mechanism).

The lowering chain mirrors Section IV/V of the paper:

* nanowire break → :class:`ChannelBreak` → :class:`ChannelBreakFault` →
  :class:`~repro.faults.logic.StuckOpenFault`;
* gate-oxide short → :class:`GateOxideShort` → :class:`GOSFault`
  (analog-only signature: delay/IDDQ, no logic image);
* PG-to-rail bridge → :class:`StuckAtNType`/:class:`StuckAtPType` →
  :class:`~repro.faults.logic.PolarityFault` (on DP gates);
* CG-PG bridge → :class:`TerminalBridgeFault`; interconnect bridge →
  :class:`InterconnectBridgeFault`; floating PG →
  :class:`FloatingPolarityGate` — all analog-domain screens.

Every fault object here is an *instance* wrapper: it carries the gate
instance name and cell type alongside the cell-local descriptor, so
cross-layer images land on the right network locations.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Callable, Sequence

from repro.core.defects import (
    DefectMechanism,
    DefectSite,
    enumerate_defect_sites,
)
from repro.core.fault_models import (
    ChannelBreakFault,
    CircuitFault,
    DriveDriftFault,
    FloatingPolarityGate,
    GOSFault,
    InterconnectBridgeFault,
    StuckAtNType,
    StuckAtPType,
    TerminalBridgeFault,
)
from repro.device.defects import (
    ChannelBreak,
    DeviceDefect,
    GateOxideShort,
    ParameterDrift,
)
from repro.faults.logic import PolarityFault, StuckOpenFault
from repro.faults.universe import FaultUniverse, register_universe
from repro.gates.cell import Cell
from repro.gates.library import ALL_CELLS
from repro.logic.network import Network
from repro.logic.switch_level import DeviceState

#: Floating-PG voltage assumed when lowering a floating-gate site to an
#: injectable :class:`FloatingPolarityGate` (mid-rail — the worst-case
#: region of the Fig. 5 sweeps).
DEFAULT_VCUT = 0.6

#: Drive weakening assumed when lowering parameter drift to an
#: injectable :class:`DriveDriftFault` (the delay-fault screen).
DEFAULT_DRIFT_FACTOR = 0.5

#: Mechanism -> short slug used in fault names and census kinds.
MECHANISM_SLUGS = {
    DefectMechanism.NANOWIRE_BREAK: "break",
    DefectMechanism.GATE_OXIDE_SHORT: "gos",
    DefectMechanism.TERMINAL_BRIDGE: "bridge",
    DefectMechanism.INTERCONNECT_BRIDGE: "xbridge",
    DefectMechanism.FLOATING_GATE: "float",
}


def switch_state_for_site(site: DefectSite) -> DeviceState | None:
    """Switch-level image of a defect site, when one exists.

    The lookup behind the inductive fault analysis
    (:mod:`repro.core.inductive`): mechanisms whose first-order
    signature is parametric (GOS, CG-PG bridges, floating CG,
    interconnect bridges) return ``None`` and are screened in the
    analog domain instead.
    """
    m = site.mechanism
    if m is DefectMechanism.NANOWIRE_BREAK:
        return DeviceState.STUCK_OPEN
    if m is DefectMechanism.TERMINAL_BRIDGE:
        if site.detail == "pg-vdd":
            return DeviceState.STUCK_AT_N
        if site.detail == "pg-gnd":
            return DeviceState.STUCK_AT_P
        return None  # cg-pg bridges need analog treatment
    if m is DefectMechanism.FLOATING_GATE:
        if site.detail in ("pgs", "pgd"):
            return DeviceState.FLOATING_PG
        return None  # floating CG: analog (coupling-dependent)
    return None


# ---------------------------------------------------------------------------
# Instance wrappers
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class MechanismFault:
    """One Table I defect site placed on one gate instance."""

    gate: str
    gtype: str
    site: DefectSite

    @property
    def name(self) -> str:
        slug = MECHANISM_SLUGS[self.site.mechanism]
        location = (
            f"{self.gate}.{self.site.transistor}"
            if self.site.transistor
            else self.gate
        )
        detail = f":{self.site.detail}" if self.site.detail else ""
        return f"{location}/{slug}{detail}"


@dataclasses.dataclass(frozen=True)
class DeviceFault:
    """One device-internal defect on one transistor of a gate instance."""

    gate: str
    gtype: str
    transistor: str
    defect: DeviceDefect

    @property
    def name(self) -> str:
        return f"{self.gate}.{self.transistor}/{_defect_slug(self.defect)}"


@dataclasses.dataclass(frozen=True)
class CircuitFaultSite:
    """One injectable circuit-fault descriptor on one gate instance."""

    gate: str
    gtype: str
    fault: CircuitFault

    @property
    def name(self) -> str:
        return f"{self.gate}/{self.fault.describe()}"


def _defect_slug(defect: DeviceDefect) -> str:
    if isinstance(defect, GateOxideShort):
        return f"gos:{defect.location}"
    if isinstance(defect, ChannelBreak):
        return f"break:{defect.fraction:g}"
    if isinstance(defect, ParameterDrift):
        return f"drift:{defect.i_on_factor:g}"
    return type(defect).__name__


# ---------------------------------------------------------------------------
# Cell-local lowering (shared by universes and the SPICE screens)
# ---------------------------------------------------------------------------

def device_defects_for_site(site: DefectSite) -> list[tuple[str, DeviceDefect]]:
    """Device-internal images of one site as ``(transistor, defect)``.

    Only nanowire breaks and gate-oxide shorts change a single device's
    I-V characteristics; every other mechanism is a circuit-level
    condition and lowers directly to :func:`circuit_faults_for_site`.
    """
    if site.mechanism is DefectMechanism.NANOWIRE_BREAK:
        return [(site.transistor, ChannelBreak(1.0))]
    if site.mechanism is DefectMechanism.GATE_OXIDE_SHORT:
        return [(site.transistor, GateOxideShort(site.detail))]
    return []


def circuit_fault_for_device_defect(
    transistor: str, defect: DeviceDefect
) -> CircuitFault | None:
    """Circuit-level wrapper of one device-internal defect."""
    if isinstance(defect, ChannelBreak):
        return ChannelBreakFault(transistor, defect.fraction)
    if isinstance(defect, GateOxideShort):
        return GOSFault(transistor, defect.location, defect.severity)
    if isinstance(defect, ParameterDrift):
        return DriveDriftFault(transistor, defect.i_on_factor)
    return None


def circuit_faults_for_site(site: DefectSite) -> list[CircuitFault]:
    """Injectable circuit-fault image(s) of one cell-local defect site.

    Mechanisms with a device-internal image route through
    :func:`device_defects_for_site` /
    :func:`circuit_fault_for_device_defect`; the rest map directly onto
    the :mod:`repro.core.fault_models` vocabulary.  A floating CG has no
    injectable descriptor (its behaviour is coupling-dependent) and
    yields ``[]``.
    """
    lowered = [
        circuit_fault_for_device_defect(t, d)
        for t, d in device_defects_for_site(site)
    ]
    if lowered:
        return [f for f in lowered if f is not None]
    m, t, detail = site.mechanism, site.transistor, site.detail
    if m is DefectMechanism.TERMINAL_BRIDGE:
        if detail == "pg-vdd":
            return [StuckAtNType(t)]
        if detail == "pg-gnd":
            return [StuckAtPType(t)]
        a, b = detail.split("-", 1)
        return [TerminalBridgeFault(t, a, b)]
    if m is DefectMechanism.INTERCONNECT_BRIDGE:
        a, b = detail.split("-", 1)
        return [InterconnectBridgeFault(a, b)]
    if m is DefectMechanism.FLOATING_GATE and detail in ("pgs", "pgd"):
        return [FloatingPolarityGate(t, detail, DEFAULT_VCUT)]
    return []


@functools.lru_cache(maxsize=None)
def _cell_sites(gtype: str) -> tuple[DefectSite, ...]:
    return tuple(enumerate_defect_sites(ALL_CELLS[gtype]))


def circuit_faults_for_cell(cell: Cell) -> list[CircuitFault]:
    """The cell's full circuit-fault universe, in site order.

    The lowered image of every Table I site, followed by one
    drive-drift (delay-fault) descriptor per transistor — the list the
    batched SPICE defect screens iterate
    (:func:`repro.core.detection.screen_cell_faults`).
    """
    sites = (
        _cell_sites(cell.name)
        if ALL_CELLS.get(cell.name) is cell
        else enumerate_defect_sites(cell)
    )
    faults: list[CircuitFault] = []
    for site in sites:
        faults.extend(circuit_faults_for_site(site))
    for t in cell.transistors:
        faults.append(DriveDriftFault(t.name, DEFAULT_DRIFT_FACTOR))
    return faults


def _is_benign_rail_bridge(cell: Cell, site: DefectSite) -> bool:
    """Bridging a polarity terminal to the rail it is already tied to
    (SP gates) changes nothing — the IFA's 'benign' class."""
    if site.mechanism is not DefectMechanism.TERMINAL_BRIDGE:
        return False
    if site.detail not in ("pg-vdd", "pg-gnd"):
        return False
    rail = "vdd" if site.detail == "pg-vdd" else "gnd"
    return _rail_tied(cell, site.transistor, rail)


def _mapped_gates(network: Network):
    """Gates with a transistor-level cell, in levelized order (the same
    deterministic order the logic enumerators use)."""
    return [g for g in network.levelized() if g.gtype in ALL_CELLS]


# ---------------------------------------------------------------------------
# Registered universes
# ---------------------------------------------------------------------------

class DefectMechanismUniverse(FaultUniverse):
    """Table I fabrication-defect sites over a network's gate instances.

    ``collapse`` drops the benign rail bridges (a polarity terminal
    bridged to the rail it is already tied to on an SP gate) — the
    mechanism-level analogue of equivalence collapsing.
    """

    layer = "mechanism"
    description = "Table I fabrication-defect sites per mapped gate instance"

    def enumerate(self, network: Network) -> list[MechanismFault]:
        faults = []
        for gate in _mapped_gates(network):
            for site in _cell_sites(gate.gtype):
                faults.append(MechanismFault(gate.name, gate.gtype, site))
        return faults

    def collapse(
        self, network: Network, faults: Sequence[MechanismFault] | None = None
    ) -> list[MechanismFault]:
        if faults is None:
            faults = self.enumerate(network)
        return [
            f
            for f in faults
            if not _is_benign_rail_bridge(ALL_CELLS[f.gtype], f.site)
        ]

    def lower(
        self, network: Network, fault: MechanismFault
    ) -> list[tuple[str, object]]:
        lowered: list[tuple[str, object]] = []
        for t, defect in device_defects_for_site(fault.site):
            lowered.append(
                ("device_defect",
                 DeviceFault(fault.gate, fault.gtype, t, defect))
            )
        if lowered:
            return lowered
        return [
            ("circuit_fault", CircuitFaultSite(fault.gate, fault.gtype, f))
            for f in circuit_faults_for_site(fault.site)
        ]

    def kind_of(self, fault: MechanismFault) -> str:
        return MECHANISM_SLUGS[fault.site.mechanism]


class DeviceDefectUniverse(FaultUniverse):
    """Device-internal defects per transistor of every mapped gate.

    The :mod:`repro.device.defects` taxonomy: a full channel break, a
    GOS at each of the three gates, and the parameter-drift origin of
    delay faults.
    """

    layer = "device"
    description = "channel break, per-gate GOS and drive drift per transistor"

    def enumerate(self, network: Network) -> list[DeviceFault]:
        faults = []
        for gate in _mapped_gates(network):
            cell = ALL_CELLS[gate.gtype]
            for t in cell.transistors:
                defects: list[DeviceDefect] = [ChannelBreak(1.0)]
                defects += [
                    GateOxideShort(loc) for loc in ("pgs", "cg", "pgd")
                ]
                defects.append(
                    ParameterDrift(i_on_factor=DEFAULT_DRIFT_FACTOR)
                )
                for defect in defects:
                    faults.append(
                        DeviceFault(gate.name, gate.gtype, t.name, defect)
                    )
        return faults

    def lower(
        self, network: Network, fault: DeviceFault
    ) -> list[tuple[str, object]]:
        circuit_fault = circuit_fault_for_device_defect(
            fault.transistor, fault.defect
        )
        if circuit_fault is None:
            return []
        return [
            ("circuit_fault",
             CircuitFaultSite(fault.gate, fault.gtype, circuit_fault))
        ]

    def kind_of(self, fault: DeviceFault) -> str:
        return _defect_slug(fault.defect).split(":")[0]


class CircuitFaultUniverse(FaultUniverse):
    """Injectable circuit-fault descriptors per mapped gate instance.

    Derived by lowering every Table I site (plus drive drift), so the
    circuit universe is by construction the image of the mechanism
    universe.  ``collapse`` drops descriptors whose mechanism-level
    origin is benign (rail bridges on already-tied SP transistors).
    """

    layer = "circuit"
    description = "injectable SPICE fault descriptors per mapped gate"

    def enumerate(self, network: Network) -> list[CircuitFaultSite]:
        faults = []
        for gate in _mapped_gates(network):
            for f in circuit_faults_for_cell(ALL_CELLS[gate.gtype]):
                faults.append(CircuitFaultSite(gate.name, gate.gtype, f))
        return faults

    def collapse(
        self,
        network: Network,
        faults: Sequence[CircuitFaultSite] | None = None,
    ) -> list[CircuitFaultSite]:
        if faults is None:
            faults = self.enumerate(network)
        kept = []
        for f in faults:
            cell = ALL_CELLS[f.gtype]
            if isinstance(f.fault, StuckAtNType) and _rail_tied(
                cell, f.fault.transistor, "vdd"
            ):
                continue
            if isinstance(f.fault, StuckAtPType) and _rail_tied(
                cell, f.fault.transistor, "gnd"
            ):
                continue
            kept.append(f)
        return kept

    def lower(
        self, network: Network, fault: CircuitFaultSite
    ) -> list[tuple[str, object]]:
        f = fault.fault
        if fault.gtype not in ALL_CELLS:
            return []
        if isinstance(f, (StuckAtNType, StuckAtPType)):
            # The polarity universe covers DP gates (SP polarity
            # terminals are rail-tied; their non-benign bridges are
            # screened in the analog domain).
            if not network.gates[fault.gate].is_dp:
                return []
            kind = "n" if isinstance(f, StuckAtNType) else "p"
            return [
                ("polarity",
                 PolarityFault(fault.gate, fault.gtype, f.transistor, kind))
            ]
        if isinstance(f, ChannelBreakFault) and f.fraction >= 1.0:
            return [
                ("stuck_open",
                 StuckOpenFault(fault.gate, fault.gtype, f.transistor))
            ]
        return []

    def kind_of(self, fault: CircuitFaultSite) -> str:
        return type(fault.fault).__name__


def _rail_tied(cell: Cell, transistor: str, rail: str) -> bool:
    t = cell.transistor(transistor)
    return t.pgs == rail and t.pgd == rail


register_universe("defect_mechanism", DefectMechanismUniverse())
register_universe("device_defect", DeviceDefectUniverse())
register_universe("circuit_fault", CircuitFaultUniverse())
