"""``python -m repro faults`` — fault-universe registry tools.

Two subcommands, both thin wrappers over the registry protocol:

* ``repro faults list`` — every registered universe with its layer and
  description (:func:`format_universe_list`);
* ``repro faults census <circuit> [...]`` — per-universe fault counts
  before/after collapsing, plus the kind breakdown, for registry
  circuits (:func:`format_census`).

CI diffs the census of two smoke circuits against the checked-in golden
``tests/golden/faults_census_smoke.txt``, so any change to an
enumerator, a collapsing rule or the site ordering shows up as a
reviewable diff.

Examples (doctested; ``tmr_voter`` is a single DP MAJ3 gate, four
transistors)::

    >>> listing = format_universe_list().splitlines()
    >>> [cell.strip() for cell in listing[0].split("|")]
    ['universe', 'layer', 'description']
    >>> sum(1 for line in listing if line.startswith("stuck_at"))
    1

    >>> census = format_census("tmr_voter")
    >>> print(census.splitlines()[0])
    circuit: tmr_voter (1 gates, 3 PIs, 1 POs)
    >>> def row(universe):
    ...     line = next(
    ...         l for l in census.splitlines() if l.startswith(universe)
    ...     )
    ...     return [cell.strip() for cell in line.split("|")]
    >>> row("stuck_at")[2:4]          # 14 faults, 8 after collapsing
    ['14', '8']
    >>> row("polarity")[4]            # 4 transistors x {n, p}
    'sa-n-type:4 sa-p-type:4'
    >>> row("device_defect")[2]       # (break + 3 GOS + drift) x 4
    '20'
"""

from __future__ import annotations

from repro.faults.universe import get_universe, universe_names


def format_universe_list() -> str:
    """Render the registry as a fixed-width table (physics-first)."""
    from repro.analysis.report import ascii_table

    rows = []
    for name in universe_names():
        universe = get_universe(name)
        rows.append((name, universe.layer, universe.description))
    return ascii_table(("universe", "layer", "description"), rows)


def census_data(
    circuit: str, universes: list[str] | None = None
) -> dict:
    """Machine-readable census of one registry circuit (the
    ``--json`` payload; :func:`format_census` renders the same data as
    the human table)."""
    from repro.campaign.registry import get_registry

    network = get_registry().load(circuit)
    stats = network.stats()
    names = universes if universes is not None else universe_names()
    rows = []
    for name in names:
        s = get_universe(name).stats(network)
        rows.append({
            "universe": s.universe,
            "layer": s.layer,
            "faults": s.n_faults,
            "collapsed": s.n_collapsed,
            "kinds": {k: n for k, n in s.by_kind},
        })
    return {
        "circuit": circuit,
        "gates": stats["gates"],
        "inputs": stats["inputs"],
        "outputs": stats["outputs"],
        "universes": rows,
    }


def format_census(circuit: str, universes: list[str] | None = None) -> str:
    """Census of one registry circuit across (selected) universes.

    ``faults`` is the full enumeration, ``collapsed`` the size after
    equivalence/benignity collapsing; ``kinds`` breaks the enumeration
    down by the universe's census buckets.
    """
    from repro.analysis.report import ascii_table
    from repro.campaign.registry import get_registry

    network = get_registry().load(circuit)
    stats = network.stats()
    names = universes if universes is not None else universe_names()
    rows = []
    for name in names:
        s = get_universe(name).stats(network)
        kinds = " ".join(f"{k}:{n}" for k, n in s.by_kind)
        rows.append((s.universe, s.layer, s.n_faults, s.n_collapsed, kinds))
    header = (
        f"circuit: {circuit} ({stats['gates']} gates, "
        f"{stats['inputs']} PIs, {stats['outputs']} POs)"
    )
    table = ascii_table(
        ("universe", "layer", "faults", "collapsed", "kinds"), rows
    )
    return f"{header}\n{table}"


def cmd_faults_list(args) -> int:
    del args
    print(format_universe_list())
    return 0


def cmd_faults_census(args) -> int:
    if getattr(args, "json", False):
        import json

        print(json.dumps(
            [
                census_data(circuit, universes=args.universes)
                for circuit in args.circuits
            ],
            indent=1, sort_keys=True,
        ))
        return 0
    blocks = [
        format_census(circuit, universes=args.universes)
        for circuit in args.circuits
    ]
    print("\n\n".join(blocks))
    return 0
