"""Logic-layer fault classes and universes (the ATPG-facing layer).

Canonical home of the gate-level fault vocabulary (moved here from
``repro.atpg.faults``, which remains as a deprecation shim):

* **Classic stuck-at** — s-a-0/s-a-1 on every net stem and every gate
  input pin (branch faults), with structural equivalence collapsing.
* **Polarity faults** (the paper's new models) — stuck-at n-type /
  p-type on every transistor of every DP gate instance.  Their local
  behaviour (faulty truth table + IDDQ activation vectors) is derived
  from the switch-level engine, so the gate-level fault is exactly the
  transistor-level defect's image.
* **Stuck-open faults** — full channel break per transistor of every
  gate instance; detectable by two-pattern tests on SP gates, and
  masked (requiring the paper's procedure) on DP gates.

Each flavour is also wrapped as a registered :class:`FaultUniverse`
(``stuck_at`` / ``polarity`` / ``stuck_open``), so campaign tasks and
the CLI address them by name through :func:`repro.faults.get_universe`.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
from typing import Sequence

from repro.faults.universe import FaultUniverse, register_universe
from repro.gates.library import ALL_CELLS
from repro.logic.network import Gate, Network
from repro.logic.switch_level import DeviceState, evaluate
from repro.logic.values import X, Z


# ---------------------------------------------------------------------------
# Stuck-at faults
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault.

    ``gate``/``pin`` identify a branch fault on one gate input; when both
    are None the fault sits on the net stem (PI or gate output).
    """

    net: str
    value: int
    gate: str | None = None
    pin: int | None = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def is_branch(self) -> bool:
        return self.gate is not None

    @property
    def name(self) -> str:
        location = (
            f"{self.gate}.in{self.pin}" if self.is_branch else self.net
        )
        return f"{location}/sa{self.value}"

    def overrides(self) -> dict:
        """Simulation overrides for :func:`repro.logic.simulator.simulate`."""
        if self.is_branch:
            return {"pin_overrides": {(self.gate, self.pin): self.value}}
        return {"line_overrides": {self.net: self.value}}


def stuck_at_faults(network: Network, collapse: bool = True) -> list[StuckAtFault]:
    """Enumerate stuck-at faults, optionally equivalence-collapsed.

    Collapsing applies the standard structural rules: on fanout-free
    nets, branch faults are equivalent to the stem fault; through
    BUF/INV, input faults are equivalent to (possibly inverted) output
    faults and are dropped.
    """
    faults: list[StuckAtFault] = []
    for net in network.nets():
        for value in (0, 1):
            faults.append(StuckAtFault(net, value))
    flop_data = _flop_data_counts(network)
    for gate in network.gates.values():
        for pin, net in enumerate(gate.inputs):
            fanout = len(network.fanout_of(net)) + flop_data.get(net, 0)
            is_po = net in network.primary_outputs
            if collapse and fanout <= 1 and not is_po:
                continue  # branch == stem on fanout-free nets
            for value in (0, 1):
                faults.append(
                    StuckAtFault(net, value, gate=gate.name, pin=pin)
                )
    if collapse:
        faults = [
            f
            for f in faults
            if not _collapsible_buffer_input(network, f)
        ]
    return faults


def _flop_data_counts(network: Network) -> dict[str, int]:
    """Net -> number of flop data inputs it feeds (sequential fanout)."""
    counts: dict[str, int] = {}
    for data in network.flops.values():
        counts[data] = counts.get(data, 0) + 1
    return counts


def _collapsible_buffer_input(network: Network, fault: StuckAtFault) -> bool:
    """Drop stem faults on BUF/INV inputs (equivalent to output faults),
    unless the net is a primary output or has fanout (gate or flop)."""
    if fault.is_branch:
        return False
    fanout = network.fanout_of(fault.net)
    if len(fanout) != 1:
        return False
    if fault.net in network.primary_outputs:
        return False
    if fault.net in _flop_data_counts(network):
        return False  # also latched: the stem fault reaches next state
    consumer = fanout[0]
    if consumer.gtype not in ("BUF", "INV"):
        return False
    # Keep primary-input and state-net faults (no upstream
    # representative — a flop output is a pseudo input within a cycle).
    return (
        fault.net not in network.primary_inputs
        and fault.net not in network.flops
    )


# ---------------------------------------------------------------------------
# Polarity faults (stuck-at n-type / p-type)
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=None)
def _local_behaviour(
    gtype: str, transistor: str, kind: str
) -> tuple[dict[tuple[int, ...], int], tuple[tuple[int, ...], ...]]:
    """Faulty local truth table + IDDQ activation vectors for a polarity
    fault on one transistor of a cell type.

    Returns ``(faulty_table, iddq_vectors)`` where the faulty table maps
    binary input tuples to 0/1/X (X = contention tie).
    """
    cell = ALL_CELLS[gtype]
    state = (
        DeviceState.STUCK_AT_N if kind == "n" else DeviceState.STUCK_AT_P
    )
    table: dict[tuple[int, ...], int] = {}
    iddq: list[tuple[int, ...]] = []
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        good = evaluate(cell, vector)
        bad = evaluate(cell, vector, {transistor: state})
        value = bad.output
        if value == Z:
            value = good.output  # retains the good value dynamically
        table[vector] = value
        if bad.conflict and not good.conflict:
            iddq.append(vector)
    return table, tuple(iddq)


@dataclasses.dataclass(frozen=True)
class PolarityFault:
    """Stuck-at n-type or p-type on one transistor of a gate instance."""

    gate: str
    gtype: str
    transistor: str
    kind: str  # 'n' | 'p'

    def __post_init__(self) -> None:
        if self.kind not in ("n", "p"):
            raise ValueError("kind must be 'n' or 'p'")
        if self.gtype not in ALL_CELLS:
            raise ValueError(
                f"gate type {self.gtype!r} has no transistor-level cell"
            )

    @property
    def name(self) -> str:
        return f"{self.gate}.{self.transistor}/sa-{self.kind}-type"

    def faulty_table(self) -> dict[tuple[int, ...], int]:
        return _local_behaviour(self.gtype, self.transistor, self.kind)[0]

    def iddq_vectors(self) -> tuple[tuple[int, ...], ...]:
        return _local_behaviour(self.gtype, self.transistor, self.kind)[1]

    def output_detecting_vectors(self) -> list[tuple[int, ...]]:
        """Local vectors where the faulty output is a known wrong value
        or an indeterminate level (X) replacing a known good one."""
        cell = ALL_CELLS[self.gtype]
        table = self.faulty_table()
        detecting = []
        for vector, faulty in table.items():
            good = cell.function(vector)
            if faulty != good:
                detecting.append(vector)
        return detecting

    def gate_override(self):
        """Override callable for the ternary simulator."""
        table = self.faulty_table()

        def override(gate: Gate, pins) -> int:
            key = tuple(pins)
            if any(p not in (0, 1) for p in key):
                return X
            return table[key]

        return override

    def overrides(self) -> dict:
        return {"gate_overrides": {self.gate: self.gate_override()}}


def polarity_faults(network: Network) -> list[PolarityFault]:
    """Stuck-at n/p faults on every transistor of every DP gate."""
    faults: list[PolarityFault] = []
    for gate in network.levelized():
        if not gate.is_dp or gate.gtype not in ALL_CELLS:
            continue
        cell = ALL_CELLS[gate.gtype]
        for t in cell.transistors:
            for kind in ("n", "p"):
                faults.append(
                    PolarityFault(gate.name, gate.gtype, t.name, kind)
                )
    return faults


# ---------------------------------------------------------------------------
# Stuck-open (channel break) faults
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StuckOpenFault:
    """Full channel break on one transistor of a gate instance.

    Two-pattern semantics: under the second pattern, if the broken
    transistor's network would drive the output alone, the output floats
    and retains the first pattern's value.
    """

    gate: str
    gtype: str
    transistor: str

    def __post_init__(self) -> None:
        if self.gtype not in ALL_CELLS:
            raise ValueError(
                f"gate type {self.gtype!r} has no transistor-level cell"
            )

    @property
    def name(self) -> str:
        return f"{self.gate}.{self.transistor}/sop"

    def is_masked(self) -> bool:
        """True when no local vector makes this transistor essential
        (DP redundancy): the break never floats the output."""
        cell = ALL_CELLS[self.gtype]
        for vector in itertools.product((0, 1), repeat=cell.n_inputs):
            broken = evaluate(
                cell, vector, {self.transistor: DeviceState.STUCK_OPEN}
            )
            if broken.output == Z:
                return False
        return True

    def floating_vectors(self) -> list[tuple[int, ...]]:
        """Local vectors under which the broken gate's output floats."""
        cell = ALL_CELLS[self.gtype]
        vectors = []
        for vector in itertools.product((0, 1), repeat=cell.n_inputs):
            broken = evaluate(
                cell, vector, {self.transistor: DeviceState.STUCK_OPEN}
            )
            if broken.output == Z:
                vectors.append(vector)
        return vectors


def stuck_open_faults(network: Network) -> list[StuckOpenFault]:
    """Channel-break faults on every transistor of every mapped gate."""
    faults: list[StuckOpenFault] = []
    for gate in network.levelized():
        if gate.gtype not in ALL_CELLS:
            continue
        cell = ALL_CELLS[gate.gtype]
        for t in cell.transistors:
            faults.append(StuckOpenFault(gate.name, gate.gtype, t.name))
    return faults


# ---------------------------------------------------------------------------
# Registered universes
# ---------------------------------------------------------------------------

class StuckAtUniverse(FaultUniverse):
    """Classic single stuck-at fault universe.

    ``enumerate`` yields the full stem+branch list; ``collapse`` applies
    the structural equivalence rules — both delegate to
    :func:`stuck_at_faults`, so the universe is bit-identical to the
    historical enumerator.
    """

    layer = "logic"
    description = "classic stuck-at-0/1 on net stems and gate-input branches"

    def enumerate(self, network: Network) -> list[StuckAtFault]:
        return stuck_at_faults(network, collapse=False)

    def collapse(
        self, network: Network, faults: Sequence[StuckAtFault] | None = None
    ) -> list[StuckAtFault]:
        collapsed = stuck_at_faults(network, collapse=True)
        if faults is None:
            return collapsed
        keep = {f.name for f in collapsed}
        return [f for f in faults if f.name in keep]

    def kind_of(self, fault: StuckAtFault) -> str:
        return f"sa{fault.value}"


class PolarityUniverse(FaultUniverse):
    """The paper's stuck-at n-type / p-type universe (Section V-B)."""

    layer = "logic"
    description = "stuck-at n-/p-type per transistor of every DP gate"

    def enumerate(self, network: Network) -> list[PolarityFault]:
        return polarity_faults(network)

    def kind_of(self, fault: PolarityFault) -> str:
        return f"sa-{fault.kind}-type"


class StuckOpenUniverse(FaultUniverse):
    """Channel-break (stuck-open) universe (Section V-C).

    No collapsing: DP-masked breaks stay in the list — they are exactly
    the faults routed to the paper's polarity-inversion procedure.
    """

    layer = "logic"
    description = "full channel break per transistor of every mapped gate"

    def enumerate(self, network: Network) -> list[StuckOpenFault]:
        return stuck_open_faults(network)

    def kind_of(self, fault: StuckOpenFault) -> str:
        return "sop"


register_universe("stuck_at", StuckAtUniverse())
register_universe("polarity", PolarityUniverse())
register_universe("stuck_open", StuckOpenUniverse())
