"""Canonical cross-layer fault records.

:class:`PolarityFaultRecord` is the one polarity-fault record shared by
the Table III analysis (:func:`repro.core.test_algorithms.polarity_fault_table`)
and the logic universe: it speaks the same ``kind`` vocabulary
(``'n'``/``'p'``) as :class:`repro.faults.logic.PolarityFault` and can
materialise the corresponding network-level fault for a gate instance.

``repro.core.test_algorithms.PolarityFaultRow`` — the historical
duplicate of this record — is now a deprecation shim for this class.
"""

from __future__ import annotations

import dataclasses

from repro.faults.logic import PolarityFault

#: ``kind`` -> Table III fault-type label.
FAULT_TYPE_LABELS = {"n": "stuck-at n-type", "p": "stuck-at p-type"}


@dataclasses.dataclass(frozen=True)
class PolarityFaultRecord:
    """One row of Table III: detectability of a polarity fault.

    Attributes:
        transistor: Cell-local transistor name (``t1`` .. ``t4``).
        kind: ``'n'`` (stuck-at n-type) or ``'p'`` — the same vocabulary
            as :class:`~repro.faults.logic.PolarityFault.kind`.
        detecting_vector: First local input vector that detects the
            fault (``None`` when undetectable).
        leakage_detect: Detecting vector triggers the IDDQ criterion.
        output_detect: Detecting vector corrupts the output voltage.
    """

    transistor: str
    kind: str
    detecting_vector: tuple[int, ...] | None
    leakage_detect: bool
    output_detect: bool

    def __post_init__(self) -> None:
        if self.kind not in FAULT_TYPE_LABELS:
            raise ValueError("kind must be 'n' or 'p'")

    @property
    def fault_type(self) -> str:
        """Table III label (``'stuck-at n-type'`` / ``'stuck-at p-type'``)."""
        return FAULT_TYPE_LABELS[self.kind]

    def fault(self, gate: str, gtype: str) -> PolarityFault:
        """The network-level polarity fault this row describes, placed
        on transistor ``self.transistor`` of gate instance ``gate``."""
        return PolarityFault(gate, gtype, self.transistor, self.kind)
