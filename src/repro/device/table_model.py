"""Look-up-table compact model (the Verilog-A table-model analogue).

Section III-D of the paper: "circuit level simulations are realized by a
simple compact model based on a table model in Verilog-A.  The result of
the TCAD simulations ... makes a look-up table model that characterizing
the channel conductivity as a function of VCG, VPGS and VPGD" plus
parasitic capacitances and access resistances.

:class:`TableModel` samples any :class:`~repro.device.tig_model.TIGSiNWFET`
(fault-free or defective) on a 4-D grid of (VCG, VPGS, VPGD, VDS) with the
source as reference, stores the currents in log-magnitude form, and
evaluates by multilinear interpolation.  Reverse operation (VDS < 0) uses
the device's source/drain symmetry: the roles of the terminals — and of
the two polarity gates — swap.
"""

from __future__ import annotations

import numpy as np

from repro.device.params import DeviceParameters
from repro.device.tig_model import TIGSiNWFET


class TableModel:
    """Interpolated table model of a TIG-SiNWFET.

    Args:
        device: Device to sample.
        grid_points: Number of grid points per gate axis.
        vds_points: Number of grid points on the VDS axis.
        margin: Sampled voltage range extends this much beyond [0, VDD]
            on every axis, so floating-node analyses stay on-grid.
    """

    def __init__(
        self,
        device: TIGSiNWFET,
        grid_points: int = 25,
        vds_points: int = 17,
        margin: float = 0.2,
    ) -> None:
        if grid_points < 2 or vds_points < 2:
            raise ValueError("need at least 2 grid points per axis")
        self.device = device
        vdd = device.params.vdd
        # Gate axes are referenced to the conduction-side terminal, which
        # itself ranges over [0, VDD]: relative gate voltages span the
        # full [-VDD, +VDD] band (plus margin).
        self._v_axis = np.linspace(
            -(vdd + margin), vdd + margin, grid_points
        )
        # The VDS axis starts just above zero: currents are divided by the
        # saturation shape factor before encoding (see _norm), which makes
        # the stored quantity finite and smooth down to VDS -> 0.  The
        # low-VDS region uses geometric spacing — the forward and reverse
        # injection terms nearly cancel there, so the normalised value
        # changes quickly and needs denser sampling.
        n_low = max(2, vds_points // 2)
        n_high = max(2, vds_points - n_low)
        low = np.geomspace(1e-4, 0.1, n_low, endpoint=False)
        high = np.linspace(0.1, vdd + margin, n_high)
        self._vds_axis = np.concatenate([low, high])
        # One vectorised evaluation over the whole 4-D grid: open
        # (broadcastable) axis views instead of materialised meshgrid
        # copies, so the only full-size allocations are the model's own
        # intermediates and the stored table itself.
        v_cg = self._v_axis[:, None, None, None]
        v_pgs = self._v_axis[None, :, None, None]
        v_pgd = self._v_axis[None, None, :, None]
        v_ds = self._vds_axis[None, None, None, :]
        i_d = np.asarray(
            np.broadcast_to(
                device.drain_current(v_cg, v_pgs, v_pgd, v_ds, 0.0),
                (grid_points, grid_points, grid_points, len(self._vds_axis)),
            ),
            dtype=float,
        )
        # Store as signed log-magnitude of the VDS-normalised current:
        # dividing out the known triode-to-saturation shape removes the
        # linear zero crossing at VDS = 0, and interpolating log values
        # keeps relative accuracy across the many decades between
        # on-current and leakage floor.
        self._log_floor = -16.0
        self._table = self._encode(i_d / self._norm(v_ds))

    def _norm(self, v_ds: np.ndarray) -> np.ndarray:
        """Saturation shape factor divided out of stored currents."""
        p = self.device.params
        v_ds = np.maximum(np.asarray(v_ds, dtype=float), 1e-12)
        return np.tanh(v_ds / p.v_dsat) * (1.0 + v_ds / p.v_early)

    @property
    def params(self) -> DeviceParameters:
        return self.device.params

    def _encode(self, i_d: np.ndarray) -> np.ndarray:
        magnitude = np.maximum(np.abs(i_d), 10.0**self._log_floor)
        return np.sign(i_d) * (np.log10(magnitude) - self._log_floor)

    def _decode(self, value: np.ndarray) -> np.ndarray:
        return np.sign(value) * 10.0 ** (np.abs(value) + self._log_floor)

    def _interpolate(
        self,
        v_cg: np.ndarray,
        v_pgs: np.ndarray,
        v_pgd: np.ndarray,
        v_ds: np.ndarray,
    ) -> np.ndarray:
        """Multilinear interpolation on the 4-D table."""
        coords = []
        for values, axis in (
            (v_cg, self._v_axis),
            (v_pgs, self._v_axis),
            (v_pgd, self._v_axis),
            (v_ds, self._vds_axis),
        ):
            clipped = np.clip(values, axis[0], axis[-1])
            idx = np.clip(
                np.searchsorted(axis, clipped) - 1, 0, len(axis) - 2
            )
            frac = (clipped - axis[idx]) / (axis[idx + 1] - axis[idx])
            coords.append((idx, frac))
        result = np.zeros(np.broadcast(v_cg, v_pgs, v_pgd, v_ds).shape)
        for corner in range(16):
            weight = np.ones_like(result)
            index = []
            for dim in range(4):
                idx, frac = coords[dim]
                if corner >> dim & 1:
                    index.append(idx + 1)
                    weight = weight * frac
                else:
                    index.append(idx)
                    weight = weight * (1.0 - frac)
            result = result + weight * self._table[tuple(index)]
        return result

    def drain_current(
        self,
        v_cg: np.ndarray | float,
        v_pgs: np.ndarray | float,
        v_pgd: np.ndarray | float,
        v_d: np.ndarray | float,
        v_s: np.ndarray | float,
    ) -> np.ndarray | float:
        """Interpolated drain current; same signature as the analytic model."""
        v_cg = np.asarray(v_cg, dtype=float)
        v_pgs = np.asarray(v_pgs, dtype=float)
        v_pgd = np.asarray(v_pgd, dtype=float)
        v_d = np.asarray(v_d, dtype=float)
        v_s = np.asarray(v_s, dtype=float)
        v_ds = v_d - v_s
        forward = v_ds >= 0
        # Forward: reference = source.  Reverse: swap D/S roles (and the
        # polarity gates with them) and negate.
        ref_fwd = v_s
        ref_rev = v_d
        value_fwd = self._interpolate(
            v_cg - ref_fwd, v_pgs - ref_fwd, v_pgd - ref_fwd, v_ds
        )
        value_rev = self._interpolate(
            v_cg - ref_rev, v_pgd - ref_rev, v_pgs - ref_rev, -v_ds
        )
        encoded = np.where(forward, value_fwd, -value_rev)
        result = self._decode(encoded) * self._norm(np.abs(v_ds))
        if result.shape == ():
            return float(result)
        return result

    def terminal_currents(
        self, v_cg: float, v_pgs: float, v_pgd: float, v_d: float, v_s: float
    ) -> dict[str, float]:
        """Terminal currents; gate shunts are delegated to the sampled device."""
        i_d = float(
            np.asarray(self.drain_current(v_cg, v_pgs, v_pgd, v_d, v_s))
        )
        currents = {"d": i_d, "s": -i_d, "cg": 0.0, "pgs": 0.0, "pgd": 0.0}
        defect = self.device.defect
        if defect is not None:
            defect.add_shunt_currents(
                self.device, currents, v_cg, v_pgs, v_pgd, v_d, v_s
            )
        return currents

    def terminal_current_matrix(self, volts: np.ndarray) -> np.ndarray:
        """Vectorised terminal currents; see the analytic model's method."""
        volts = np.asarray(volts, dtype=float)
        if volts.shape[-1] != 5:
            raise ValueError("last axis must hold (d, cg, pgs, pgd, s)")
        i_d = np.asarray(
            self.drain_current(
                volts[..., 1],
                volts[..., 2],
                volts[..., 3],
                volts[..., 0],
                volts[..., 4],
            )
        )
        out = np.zeros_like(volts)
        out[..., 0] = i_d
        out[..., 4] = -i_d
        defect = self.device.defect
        if defect is not None:
            spec = defect.shunt_spec()
            if spec is not None:
                # The sampled table already folds the shunt's drain-side
                # share into the drain current; balance via gate/source.
                gate, resistance, alpha = spec
                gate_col = {"cg": 1, "pgs": 2, "pgd": 3}[gate]
                v_channel = (
                    alpha * volts[..., 0] + (1.0 - alpha) * volts[..., 4]
                )
                i_shunt = (volts[..., gate_col] - v_channel) / resistance
                out[..., gate_col] -= i_shunt
                out[..., 4] += i_shunt
        return out

    def max_relative_log_error(self, samples: int = 200, seed: int = 7) -> float:
        """Worst-case log10 error vs the analytic model on random biases.

        Used by tests to verify the table model is a faithful stand-in for
        the analytic device (the paper's TCAD -> Verilog-A step).
        """
        rng = np.random.default_rng(seed)
        vdd = self.params.vdd
        v = rng.uniform(0.0, vdd, size=(samples, 5))
        exact = np.asarray(
            self.device.drain_current(
                v[:, 0], v[:, 1], v[:, 2], v[:, 3], v[:, 4]
            )
        )
        approx = np.asarray(
            self.drain_current(v[:, 0], v[:, 1], v[:, 2], v[:, 3], v[:, 4])
        )
        floor = 10.0**self._log_floor
        log_exact = np.log10(np.abs(exact) + floor)
        log_approx = np.log10(np.abs(approx) + floor)
        return float(np.max(np.abs(log_exact - log_approx)))
