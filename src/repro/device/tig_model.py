"""Analytic compact model of the TIG-SiNWFET.

This module replaces the paper's Sentaurus TCAD + Verilog-A table model with
a physics-flavoured analytic model (see DESIGN.md for the substitution
argument).  The device is a gate-all-around silicon nanowire with NiSi
Schottky source/drain contacts and three independent gates:

* ``PGS`` — polarity gate over the source-side Schottky junction,
* ``CG`` — control gate over the channel body,
* ``PGD`` — polarity gate over the drain-side Schottky junction.

Conduction requires all three gates to agree: all high for the electron
(n-type) branch, all low for the hole (p-type) branch; mixed biases block
the channel — the device is off when ``CG xor (PGS and PGD)`` in logic
terms.  Each branch is modelled as three gated barrier segments in series,
with the carrier-injection side evaluated at full strength and the exit
side softened (``drain_weight``) to encode the quasi-ballistic transport
under the drain gate described in Section IV-B of the paper.

The model is bidirectional (source/drain roles follow the terminal
voltages), smooth in all terminal voltages, and vectorised over numpy
arrays.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.device import physics
from repro.device.params import DEFAULT_PARAMS, DeviceParameters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.device.defects import DeviceDefect

TERMINALS = ("d", "cg", "pgs", "pgd", "s")
"""Canonical terminal ordering used by terminal-current dictionaries."""


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """Terminal voltages of a TIG-SiNWFET instance [V]."""

    v_cg: float
    v_pgs: float
    v_pgd: float
    v_d: float
    v_s: float


class TIGSiNWFET:
    """Compact model of a three-independent-gate SiNWFET.

    Args:
        params: Structural/electrical parameters (defaults to Table II).
        defect: Optional device-level defect (see
            :mod:`repro.device.defects`); ``None`` models a fault-free
            device.

    The main entry points are :meth:`drain_current` for plain I-V
    evaluation and :meth:`terminal_currents` for circuit simulation (which
    also reports gate currents when a gate-oxide short is present).
    """

    def __init__(
        self,
        params: DeviceParameters = DEFAULT_PARAMS,
        defect: "DeviceDefect | None" = None,
    ) -> None:
        self.params = params
        self.defect = defect
        # Normalisation so that the fault-free on-current at
        # (VCG = VPGS = VPGD = VDS = VDD) equals params.i_on.
        unit = physics.saturation_factor(
            params.vdd, params.v_dsat, params.v_early
        )
        on_activation = self._series(
            np.array(1.0), np.array(1.0), np.array(1.0)
        )
        self._i0 = params.i_on / (float(unit) * float(on_activation))

    # ------------------------------------------------------------------
    # Branch activations
    # ------------------------------------------------------------------
    def _gate_adjustments(self, gate: str, branch: str) -> tuple[float, float]:
        """Return (threshold shift, activation factor) from the defect."""
        if self.defect is None:
            return 0.0, 1.0
        return (
            self.defect.vth_shift(gate, branch),
            self.defect.segment_factor(gate, branch),
        )

    def _segment_activations_n(
        self,
        v_cg: np.ndarray,
        v_pg_inj: np.ndarray,
        v_pg_exit: np.ndarray,
        v_ref: np.ndarray,
        gate_inj: str,
        gate_exit: str,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Electron-branch activations (injection PG, CG, exit PG).

        ``gate_inj``/``gate_exit`` name the physical polarity gate at the
        carrier-injection and carrier-exit ends for this flow direction,
        so device-level defects attach to the right physical terminal.
        """
        p = self.params
        shift, factor = self._gate_adjustments(gate_inj, "n")
        a_inj = factor * physics.n_activation(
            v_pg_inj - v_ref, p.vth_pg + shift, p.ss_pg
        )
        shift, factor = self._gate_adjustments("cg", "n")
        a_cg = factor * physics.n_activation(
            v_cg - v_ref, p.vth_cg + shift, p.ss_cg
        )
        shift, factor = self._gate_adjustments(gate_exit, "n")
        a_exit = physics.n_activation(
            v_pg_exit - v_ref, p.vth_pg + shift, p.ss_pg
        )
        a_exit = factor * np.power(
            np.maximum(a_exit, physics.ACTIVATION_FLOOR), p.drain_weight
        )
        return a_inj, a_cg, a_exit

    def _segment_activations_p(
        self,
        v_cg: np.ndarray,
        v_pg_inj: np.ndarray,
        v_pg_exit: np.ndarray,
        v_ref: np.ndarray,
        gate_inj: str,
        gate_exit: str,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Hole-branch activations (injection PG, CG, exit PG)."""
        p = self.params
        shift, factor = self._gate_adjustments(gate_inj, "p")
        a_inj = factor * physics.p_activation(
            v_pg_inj - v_ref, p.vth_pg + shift, p.ss_pg
        )
        shift, factor = self._gate_adjustments("cg", "p")
        a_cg = factor * physics.p_activation(
            v_cg - v_ref, p.vth_cg + shift, p.ss_cg
        )
        shift, factor = self._gate_adjustments(gate_exit, "p")
        a_exit = physics.p_activation(
            v_pg_exit - v_ref, p.vth_pg + shift, p.ss_pg
        )
        a_exit = factor * np.power(
            np.maximum(a_exit, physics.ACTIVATION_FLOOR), p.drain_weight
        )
        return a_inj, a_cg, a_exit

    def _series(self, *segments: np.ndarray) -> np.ndarray:
        """Series combination with defect hooks applied."""
        return np.asarray(physics.series_activation(*segments))

    # ------------------------------------------------------------------
    # Current evaluation
    # ------------------------------------------------------------------
    def _directional_current(
        self,
        v_cg: np.ndarray,
        v_pg_low: np.ndarray,
        v_pg_high: np.ndarray,
        v_low: np.ndarray,
        v_high: np.ndarray,
        gate_low: str,
        gate_high: str,
    ) -> np.ndarray:
        """Channel current magnitude for carriers flowing low -> high.

        Electrons are injected at the low-potential terminal (gated by
        ``v_pg_low``); holes at the high-potential terminal (gated by
        ``v_pg_high``).  ``v_low``/``v_high`` are the corresponding
        terminal potentials, and ``gate_low``/``gate_high`` the physical
        names ('pgs'/'pgd') of the polarity gates at those ends.  The
        returned current magnitude already includes both carrier branches
        but not the leakage floor.
        """
        p = self.params
        vds_eff = physics.smooth_positive(v_high - v_low)

        n_inj, n_cg, n_exit = self._segment_activations_n(
            v_cg, v_pg_low, v_pg_high, v_low, gate_low, gate_high
        )
        p_inj, p_cg, p_exit = self._segment_activations_p(
            v_cg, v_pg_high, v_pg_low, v_high, gate_high, gate_low
        )
        g_n = self._series(n_inj, n_cg, n_exit)
        g_p = self._series(p_inj, p_cg, p_exit)
        sat = physics.saturation_factor(vds_eff, p.v_dsat, p.v_early)
        current = (
            self._i0 * (g_n + p.p_branch_factor * g_p) * sat
        )
        if self.defect is not None:
            current = self.defect.scale_channel_current(self, current)
        return current

    def drain_current(
        self,
        v_cg: np.ndarray | float,
        v_pgs: np.ndarray | float,
        v_pgd: np.ndarray | float,
        v_d: np.ndarray | float,
        v_s: np.ndarray | float,
    ) -> np.ndarray | float:
        """Conventional current into the drain terminal [A].

        Positive when current flows drain -> source inside the channel
        (normal n-type operation with ``v_d > v_s``).  Vectorised: any
        argument may be a numpy array (they broadcast together).
        """
        v_cg = np.asarray(v_cg, dtype=float)
        v_pgs = np.asarray(v_pgs, dtype=float)
        v_pgd = np.asarray(v_pgd, dtype=float)
        v_d = np.asarray(v_d, dtype=float)
        v_s = np.asarray(v_s, dtype=float)

        # Forward: source is the low terminal (electron injection at S).
        forward = self._directional_current(
            v_cg, v_pgs, v_pgd, v_s, v_d, "pgs", "pgd"
        )
        # Reverse: drain is the low terminal.
        reverse = self._directional_current(
            v_cg, v_pgd, v_pgs, v_d, v_s, "pgd", "pgs"
        )
        floor = self.params.i_floor * np.tanh((v_d - v_s) / 0.05)
        current = forward - reverse + floor

        if self.defect is not None:
            current = current + self.defect.extra_drain_current(
                self, v_cg, v_pgs, v_pgd, v_d, v_s
            )
        if current.shape == ():
            return float(current)
        return current

    def terminal_currents(
        self,
        v_cg: float,
        v_pgs: float,
        v_pgd: float,
        v_d: float,
        v_s: float,
    ) -> dict[str, float]:
        """Currents *into* each terminal [A], for circuit simulation.

        For a fault-free device the gate currents are zero and
        ``i_d == -i_s``.  A gate-oxide short adds a shunt current from the
        defective gate into the channel, split between drain and source
        according to the defect position.
        """
        i_d = float(
            np.asarray(
                self.drain_current(v_cg, v_pgs, v_pgd, v_d, v_s)
            )
        )
        currents = {"d": i_d, "s": -i_d, "cg": 0.0, "pgs": 0.0, "pgd": 0.0}
        if self.defect is not None:
            self.defect.add_shunt_currents(
                self, currents, v_cg, v_pgs, v_pgd, v_d, v_s
            )
        return currents

    def terminal_current_matrix(self, volts: np.ndarray) -> np.ndarray:
        """Vectorised terminal currents for circuit simulation.

        Args:
            volts: Array of shape ``(..., 5)`` holding terminal voltages in
                the order ``(d, cg, pgs, pgd, s)``.

        Returns:
            Array of the same shape with the current flowing *into* each
            terminal.  Gate columns are zero unless the defect defines a
            gate-to-channel shunt.
        """
        volts = np.asarray(volts, dtype=float)
        if volts.shape[-1] != 5:
            raise ValueError("last axis must hold (d, cg, pgs, pgd, s)")
        v_d = volts[..., 0]
        v_cg = volts[..., 1]
        v_pgs = volts[..., 2]
        v_pgd = volts[..., 3]
        v_s = volts[..., 4]
        i_d = np.asarray(self.drain_current(v_cg, v_pgs, v_pgd, v_d, v_s))
        out = np.zeros_like(volts)
        out[..., 0] = i_d
        out[..., 4] = -i_d
        if self.defect is not None:
            spec = self.defect.shunt_spec()
            if spec is not None:
                # drain_current() already contains the shunt's drain-side
                # share (alpha * i_shunt); route the remainder through the
                # source column and pull the total from the gate so that
                # the terminal currents sum to zero.
                gate, resistance, alpha = spec
                gate_col = {"cg": 1, "pgs": 2, "pgd": 3}[gate]
                v_channel = alpha * v_d + (1.0 - alpha) * v_s
                i_shunt = (volts[..., gate_col] - v_channel) / resistance
                out[..., gate_col] -= i_shunt
                out[..., 4] += i_shunt
        return out

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    def conducts(
        self, cg: int, pgs: int, pgd: int
    ) -> bool:
        """Logic-level conduction predicate of a fault-free CP device.

        Implements the paper's condition: conduction iff
        ``CG == PGS == PGD`` (all 1: n-type, all 0: p-type); equivalently
        the device is off iff ``CG xor (PGS and PGD)``.
        """
        for value in (cg, pgs, pgd):
            if value not in (0, 1):
                raise ValueError(
                    f"logic-level inputs must be 0 or 1, got {value}"
                )
        return cg == pgs == pgd

    def polarity(self, pgs: int, pgd: int) -> str:
        """Return the configured polarity for logic-level PG values.

        ``'n'`` when both polarity gates are high, ``'p'`` when both are
        low, ``'off'`` for mixed biases (the device cannot conduct).
        """
        if pgs == 1 and pgd == 1:
            return "n"
        if pgs == 0 and pgd == 0:
            return "p"
        return "off"
