"""Smooth activation and combination primitives for the compact model.

The TIG-SiNWFET compact model describes the channel as three gated barrier
segments in series (source Schottky junction under PGS, thermionic channel
barrier under CG, drain Schottky junction under PGD).  Each segment
contributes a dimensionless *activation* in (0, 1]: an exponential
(subthreshold-like) turn-on below its threshold that saturates to one above
it.  These helpers are shared by the analytic model, the defect models and
the TCAD-lite calibration, and are written to be smooth everywhere so that
Newton-based circuit solvers converge reliably.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import expit

LN10 = math.log(10.0)

#: Lower clip for activations; keeps series combination finite without
#: affecting any observable quantity (device leakage floors are many orders
#: of magnitude above ``i_on * ACTIVATION_FLOOR``).
ACTIVATION_FLOOR = 1e-30


def logistic10(x: np.ndarray | float) -> np.ndarray | float:
    """Return ``1 / (1 + 10**-x)`` computed without overflow.

    This is a logistic function expressed in decades: for ``x << 0`` it
    behaves as ``10**x`` (one decade of attenuation per unit), and it
    saturates to 1 for ``x >> 0``.
    """
    return expit(np.asarray(x, dtype=float) * LN10)


def n_activation(
    v_gate_rel: np.ndarray | float, vth: float, ss: float
) -> np.ndarray | float:
    """Electron-branch activation of a gated barrier segment.

    Args:
        v_gate_rel: Gate voltage relative to the carrier-injection terminal.
        vth: Segment threshold voltage.
        ss: Subthreshold slope in volts per decade.

    Returns:
        Activation in (0, 1]: ``~10**((V - vth)/ss)`` below threshold,
        saturating to one above it.
    """
    return logistic10((np.asarray(v_gate_rel, dtype=float) - vth) / ss)


def p_activation(
    v_gate_rel: np.ndarray | float, vth: float, ss: float
) -> np.ndarray | float:
    """Hole-branch activation: the mirror image of :func:`n_activation`.

    Conduction requires the gate to sit at least ``vth`` *below* the
    injection terminal.
    """
    return logistic10((-np.asarray(v_gate_rel, dtype=float) - vth) / ss)


def series_activation(*segments: np.ndarray | float) -> np.ndarray | float:
    """Combine segment activations in series.

    Uses the harmonic mean scaled so that all-ones maps to one: the
    composite is limited by the most opaque barrier, reproducing the
    conduction condition of the TIG device (any blocking gate switches the
    branch off) while remaining smooth.
    """
    if not segments:
        raise ValueError("series_activation needs at least one segment")
    arrays = [
        np.maximum(np.asarray(s, dtype=float), ACTIVATION_FLOOR)
        for s in segments
    ]
    inverse_sum = sum(1.0 / a for a in arrays)
    return len(arrays) / inverse_sum


def smooth_positive(x: np.ndarray | float, eps: float = 1e-4) -> np.ndarray | float:
    """Smooth approximation of ``max(x, 0)``.

    Used to split the drain-source voltage into forward/reverse parts
    without introducing a derivative kink at zero (which would destabilise
    Newton iterations around bidirectional pass-transistor operation).
    """
    x = np.asarray(x, dtype=float)
    return 0.5 * (x + np.sqrt(x * x + eps * eps))


def saturation_factor(
    vds_eff: np.ndarray | float, v_dsat: float, v_early: float
) -> np.ndarray | float:
    """Drain-voltage dependence: smooth linear-to-saturation transition.

    ``tanh`` gives the triode-to-saturation knee at ``v_dsat``; the Early
    term models channel-length modulation.
    """
    vds_eff = np.asarray(vds_eff, dtype=float)
    return np.tanh(vds_eff / v_dsat) * (1.0 + vds_eff / v_early)


def decades(ratio: float) -> float:
    """Return ``log10(ratio)`` guarding against non-positive input."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.log10(ratio)
