"""I-V sweep utilities and figure-of-merit extraction.

These routines regenerate the Fig. 3 style transfer curves and extract the
metrics the paper quotes: saturation drain current ID(SAT), threshold
voltage VTh (constant-current method), subthreshold slope and on/off ratio.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.device.tig_model import TIGSiNWFET


@dataclasses.dataclass(frozen=True)
class TransferCurve:
    """An ID-VCG transfer curve at fixed polarity-gate and drain bias."""

    v_cg: np.ndarray
    i_d: np.ndarray
    v_pgs: float
    v_pgd: float
    v_ds: float

    def __post_init__(self) -> None:
        if self.v_cg.shape != self.i_d.shape:
            raise ValueError("v_cg and i_d must have the same shape")


def sweep_id_vcg(
    device: TIGSiNWFET,
    polarity: str = "n",
    v_ds: float | None = None,
    points: int = 121,
) -> TransferCurve:
    """Sweep the control gate with the device biased in ``polarity`` mode.

    For the n configuration both polarity gates sit at VDD and the source
    at ground (the Fig. 3 setup); the p configuration mirrors all biases.

    Args:
        device: The (possibly defective) device model.
        polarity: ``'n'`` or ``'p'``.
        v_ds: Drain-source bias magnitude; defaults to VDD.
        points: Number of sweep points.
    """
    vdd = device.params.vdd
    if v_ds is None:
        v_ds = vdd
    v_cg = np.linspace(0.0, vdd, points)
    if polarity == "n":
        i_d = device.drain_current(v_cg, vdd, vdd, v_ds, 0.0)
    elif polarity == "p":
        # p-type: source at VDD, drain below it; sweep CG downwards gives
        # the mirrored curve.  Report |ID| against VSG-like axis for easy
        # comparison with the n curve.
        i_d = -np.asarray(
            device.drain_current(vdd - v_cg, 0.0, 0.0, vdd - v_ds, vdd)
        )
    else:
        raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")
    return TransferCurve(
        v_cg=v_cg,
        i_d=np.asarray(i_d, dtype=float),
        v_pgs=vdd if polarity == "n" else 0.0,
        v_pgd=vdd if polarity == "n" else 0.0,
        v_ds=v_ds,
    )


def id_sat(curve: TransferCurve) -> float:
    """Saturation drain current: ID at the maximum gate drive."""
    return float(curve.i_d[-1])


def threshold_voltage(
    curve: TransferCurve,
    i_crit: float | None = None,
    params: DeviceParameters = DEFAULT_PARAMS,
) -> float:
    """Constant-current threshold voltage.

    Uses the standard constant-current criterion (``i_crit`` defaults to
    ``i_on / 50``, a mid-transition level robust to both the subthreshold
    region and saturation plateaus) with log-linear interpolation between
    sweep points.
    """
    if i_crit is None:
        i_crit = params.i_on / 50.0
    i_d = np.maximum(np.asarray(curve.i_d, dtype=float), 1e-30)
    above = np.nonzero(i_d >= i_crit)[0]
    if above.size == 0:
        return float("nan")
    k = int(above[0])
    if k == 0:
        return float(curve.v_cg[0])
    v0, v1 = curve.v_cg[k - 1], curve.v_cg[k]
    l0, l1 = np.log10(i_d[k - 1]), np.log10(i_d[k])
    lc = np.log10(i_crit)
    if l1 == l0:
        return float(v1)
    return float(v0 + (v1 - v0) * (lc - l0) / (l1 - l0))


def subthreshold_slope(curve: TransferCurve) -> float:
    """Subthreshold slope [V/decade] in the steepest part of the curve.

    Computed as the minimum of ``dVCG / dlog10(ID)`` over the region where
    the current is rising and at least a decade above the floor.
    """
    i_d = np.maximum(np.asarray(curve.i_d, dtype=float), 1e-30)
    log_i = np.log10(i_d)
    dv = np.diff(curve.v_cg)
    dlog = np.diff(log_i)
    valid = dlog > 1e-6
    if not np.any(valid):
        return float("nan")
    slopes = dv[valid] / dlog[valid]
    return float(np.min(slopes))


def on_off_ratio(curve: TransferCurve) -> float:
    """Ratio of the maximum to minimum current magnitude along the sweep."""
    i_abs = np.abs(np.asarray(curve.i_d, dtype=float))
    i_min = float(np.min(i_abs))
    if i_min <= 0:
        i_min = 1e-30
    return float(np.max(i_abs)) / i_min


@dataclasses.dataclass(frozen=True)
class CurveMetrics:
    """Summary metrics of a transfer curve (the Fig. 3 commentary)."""

    id_sat: float
    vth: float
    ss: float
    on_off: float
    i_min: float

    @classmethod
    def from_curve(
        cls, curve: TransferCurve, params: DeviceParameters = DEFAULT_PARAMS
    ) -> "CurveMetrics":
        return cls(
            id_sat=id_sat(curve),
            vth=threshold_voltage(curve, params=params),
            ss=subthreshold_slope(curve),
            on_off=on_off_ratio(curve),
            i_min=float(np.min(curve.i_d)),
        )


def compare_to_fault_free(
    defective: TIGSiNWFET,
    reference: TIGSiNWFET | None = None,
    polarity: str = "n",
) -> dict[str, float]:
    """Compare a defective device against a fault-free reference.

    Returns the quantities the paper reports for GOS defects: the ID(SAT)
    ratio, the threshold shift, and the minimum current (negative when the
    GOS shunt dominates at low VCG).
    """
    if reference is None:
        reference = TIGSiNWFET(defective.params)
    ref_curve = sweep_id_vcg(reference, polarity=polarity)
    def_curve = sweep_id_vcg(defective, polarity=polarity)
    ref_metrics = CurveMetrics.from_curve(ref_curve, defective.params)
    def_metrics = CurveMetrics.from_curve(def_curve, defective.params)
    return {
        "id_sat_ratio": def_metrics.id_sat / ref_metrics.id_sat,
        "delta_vth": def_metrics.vth - ref_metrics.vth,
        "i_min": def_metrics.i_min,
        "ref_id_sat": ref_metrics.id_sat,
        "ref_vth": ref_metrics.vth,
    }
