"""Physical constants and TIG-SiNWFET device parameters.

The structural parameters reproduce Table II of the paper; the electrical
calibration constants are chosen so that the compact model in
:mod:`repro.device.tig_model` hits the paper's published anchor values
(Ion ~ 4.5 uA at VDD = 1.2 V, VTh ~ 0.4 V, and the GOS-induced shifts of
Fig. 3).
"""

from __future__ import annotations

import dataclasses
import math

# ---------------------------------------------------------------------------
# Physical constants (SI units).
# ---------------------------------------------------------------------------

Q_ELEMENTARY = 1.602176634e-19
"""Elementary charge [C]."""

K_BOLTZMANN = 1.380649e-23
"""Boltzmann constant [J/K]."""

EPSILON_0 = 8.8541878128e-12
"""Vacuum permittivity [F/m]."""

EPSILON_SI = 11.7 * EPSILON_0
"""Silicon permittivity [F/m]."""

EPSILON_HFO2 = 22.0 * EPSILON_0
"""HfO2 (high-k gate dielectric) permittivity [F/m]."""

N_INTRINSIC_SI = 1.0e16
"""Intrinsic carrier density of silicon at 300 K [m^-3] (1e10 cm^-3)."""

T_ROOM = 300.0
"""Nominal simulation temperature [K]."""


def thermal_voltage(temperature: float = T_ROOM) -> float:
    """Return kT/q [V] at the given temperature."""
    return K_BOLTZMANN * temperature / Q_ELEMENTARY


V_THERMAL = thermal_voltage()
"""Thermal voltage at 300 K, about 25.85 mV."""


@dataclasses.dataclass(frozen=True)
class DeviceParameters:
    """Structural and electrical parameters of a TIG-SiNWFET.

    The default values reproduce Table II of the paper.  Lengths are in
    metres, energies in eV, doping in m^-3, voltages in volts.

    Attributes:
        l_cg: Control-gate length (LCG).
        l_pgs: Source-side polarity-gate length (LPGS).
        l_pgd: Drain-side polarity-gate length (LPGD).
        l_spacer: Spacer length between gates (LCP).
        t_ox: Gate-oxide (HfO2) thickness (TOX).
        r_nw: Nanowire radius (RNW).
        n_channel: Channel doping concentration.
        phi_barrier: Schottky-barrier height at the NiSi source/drain [eV].
        vdd: Nominal supply voltage.
        i_on: Calibrated on-current at VCG=VPGS=VPGD=VDS=vdd [A].
        i_floor: Residual off-state leakage floor [A].
        vth_cg: Threshold voltage of the control-gate barrier (n-branch).
        vth_pg: Threshold voltage of the polarity-gate Schottky barriers
            (n-branch); the p-branch uses ``vdd - vth``.
        ss_cg: Subthreshold slope of the control gate [V/decade].
        ss_pg: Effective slope of the polarity-gate barrier-thinning
            characteristic [V/decade].  Schottky-barrier tunnelling has a
            softer slope than thermionic emission, which is what limits the
            leakage swing in Fig. 5 to about six decades across a full
            0 -> VDD sweep.
        drain_weight: Relative influence of the drain-side segment on the
            series on-conductance.  Values below one encode the
            quasi-ballistic transport under PGD (Section IV-B): carriers
            already injected at the source are only weakly re-controlled at
            the drain, so PGD's barrier is effectively more transparent.
        p_branch_factor: Hole-branch drive relative to the electron
            branch.  Schottky hole injection through the NiSi contacts is
            weaker than electron injection; this asymmetry is what makes
            a wrong-polarity (p-mode) pull-up lose the fight against an
            n-mode pull-down — the physical root of the paper's Table III
            and Fig. 5c/5f asymmetries.
        v_early: Channel-length-modulation (Early) voltage [V].
        v_dsat: Drain-saturation scaling voltage [V].
        temperature: Simulation temperature [K].
    """

    l_cg: float = 22e-9
    l_pgs: float = 22e-9
    l_pgd: float = 22e-9
    l_spacer: float = 18e-9
    t_ox: float = 5.1e-9
    r_nw: float = 7.5e-9
    n_channel: float = 1e21  # 1e15 cm^-3
    phi_barrier: float = 0.41
    vdd: float = 1.2

    i_on: float = 4.5e-6
    i_floor: float = 2.0e-13
    vth_cg: float = 0.42
    vth_pg: float = 0.72
    ss_cg: float = 0.062
    ss_pg: float = 0.110
    drain_weight: float = 0.50
    p_branch_factor: float = 0.60
    v_early: float = 9.0
    v_dsat: float = 0.35
    temperature: float = T_ROOM

    # Parasitics for the circuit-level table model (Section III-D: the
    # Verilog-A look-up table also carries terminal capacitances and access
    # resistances).
    c_gate: float = 0.12e-15
    """Capacitance of each gate terminal to the channel [F]."""

    c_junction: float = 0.06e-15
    """Source/drain junction capacitance [F]."""

    r_access: float = 2.0e3
    """Source/drain access resistance (NiSi contact + extension) [Ohm]."""

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if self.i_on <= self.i_floor:
            raise ValueError("i_on must exceed the leakage floor")
        for name in ("l_cg", "l_pgs", "l_pgd", "l_spacer", "t_ox", "r_nw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 < self.drain_weight <= 1:
            raise ValueError("drain_weight must be in (0, 1]")
        if not 0 < self.p_branch_factor <= 1:
            raise ValueError("p_branch_factor must be in (0, 1]")

    @property
    def channel_length(self) -> float:
        """Total gated channel length: three gates plus two spacers."""
        return (
            self.l_pgs + self.l_cg + self.l_pgd + 2 * self.l_spacer
        )

    @property
    def nanowire_area(self) -> float:
        """Cross-sectional area of the nanowire channel [m^2]."""
        return math.pi * self.r_nw**2

    @property
    def oxide_capacitance_per_area(self) -> float:
        """Gate-oxide capacitance per unit area (cylindrical shell) [F/m^2].

        Uses the coaxial-capacitor expression for a gate-all-around
        geometry, referenced to the nanowire surface.
        """
        ratio = (self.r_nw + self.t_ox) / self.r_nw
        return EPSILON_HFO2 / (self.r_nw * math.log(ratio))

    @property
    def natural_length(self) -> float:
        """Electrostatic natural (scaling) length of the GAA channel [m].

        lambda = sqrt(eps_si * t_si * t_ox / (2 * eps_ox)) adapted for a
        cylindrical body; used by the TCAD-lite Poisson solver for the
        gate-to-channel coupling strength.
        """
        t_si = 2 * self.r_nw
        return math.sqrt(
            EPSILON_SI * t_si * self.t_ox / (2 * EPSILON_HFO2)
        )

    def v_t(self) -> float:
        """Thermal voltage at the device temperature [V]."""
        return thermal_voltage(self.temperature)


DEFAULT_PARAMS = DeviceParameters()
"""Module-level default parameter set (Table II values)."""


def table_ii_rows(params: DeviceParameters = DEFAULT_PARAMS) -> list[tuple[str, str]]:
    """Return the rows of the paper's Table II for the given parameters.

    Each row is a ``(parameter description, formatted value)`` pair, in the
    paper's order, formatted with the paper's units.
    """
    nm = 1e9
    return [
        ("Length of Control Gate (LCG)", f"{params.l_cg * nm:.0f} nm"),
        (
            "Length of Polarity Gates (LPGS, LPGD)",
            f"{params.l_pgs * nm:.0f} nm",
        ),
        ("Length of Spacer (LCP)", f"{params.l_spacer * nm:.0f} nm"),
        (
            "Channel Doping Concentration",
            f"{params.n_channel * 1e-6:.0e} cm^-3",
        ),
        ("Schottky Barrier Height", f"{params.phi_barrier:.2f} eV"),
        ("Oxide Thickness (TOx)", f"{params.t_ox * nm:.1f} nm"),
        ("Radius of NanoWire (RNW)", f"{params.r_nw * nm:.1f} nm"),
    ]
