"""TIG-SiNWFET device-model substrate.

Replaces the paper's Sentaurus TCAD + HSPICE Verilog-A table model with a
calibrated analytic compact model, device-level defect models (gate-oxide
short, channel break, parameter drift) and a look-up-table model for
circuit simulation.  See DESIGN.md section 2 for the substitution
rationale.
"""

from repro.device.cache import (
    cached_device,
    cached_table_model,
    clear_model_caches,
    model_cache_stats,
)
from repro.device.defects import (
    ChannelBreak,
    DeviceDefect,
    GateOxideShort,
    ParameterDrift,
)
from repro.device.iv import (
    CurveMetrics,
    TransferCurve,
    compare_to_fault_free,
    id_sat,
    on_off_ratio,
    subthreshold_slope,
    sweep_id_vcg,
    threshold_voltage,
)
from repro.device.params import (
    DEFAULT_PARAMS,
    DeviceParameters,
    table_ii_rows,
    thermal_voltage,
)
from repro.device.table_model import TableModel
from repro.device.tig_model import TIGSiNWFET, OperatingPoint

__all__ = [
    "ChannelBreak",
    "CurveMetrics",
    "DEFAULT_PARAMS",
    "DeviceDefect",
    "DeviceParameters",
    "GateOxideShort",
    "OperatingPoint",
    "ParameterDrift",
    "TIGSiNWFET",
    "TableModel",
    "TransferCurve",
    "cached_device",
    "cached_table_model",
    "clear_model_caches",
    "compare_to_fault_free",
    "model_cache_stats",
    "id_sat",
    "on_off_ratio",
    "subthreshold_slope",
    "sweep_id_vcg",
    "table_ii_rows",
    "thermal_voltage",
    "threshold_voltage",
]
