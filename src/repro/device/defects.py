"""Device-level defect models for the TIG-SiNWFET compact model.

Section IV of the paper derives the realistic defect set from the
fabrication process (Table I): nanowire break, gate-oxide short (GOS) at
any of the three gates, bridges between terminals, and floating gates.
This module implements the *device-internal* defects — the ones that change
the I-V characteristics of a single transistor:

* :class:`GateOxideShort` — a conductive plug through the gate dielectric;
  reduces the defective segment's conductance (carrier absorption), shifts
  the threshold seen from the control gate, and adds a resistive shunt
  between the gate electrode and the channel (which produces the negative
  drain-current branch of Fig. 3).
* :class:`ChannelBreak` — a severed (or partially severed) nanowire;
  suppresses the channel current, leaving only the leakage floor.
* :class:`ParameterDrift` — LER/process variation; shifts thresholds and
  scales the on-current (the physical origin of delay faults).

Bridges between *circuit nets* and floating gates are circuit-level
conditions and live in :mod:`repro.core.fault_models` /
:mod:`repro.spice`.

The compact model queries three kinds of information from a defect:
per-gate threshold shifts and activation factors (:meth:`DeviceDefect.vth_shift`,
:meth:`DeviceDefect.segment_factor`), a global channel-current factor
(:meth:`DeviceDefect.channel_factor`), and an optional gate-to-channel
shunt (:meth:`DeviceDefect.shunt_spec`).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.device.tig_model import TIGSiNWFET

GATE_TERMINALS = ("pgs", "cg", "pgd")
"""The three gate terminals of a TIG-SiNWFET."""


class DeviceDefect:
    """Base class for device-level defects.

    The default implementations are no-ops, so subclasses override only
    what their physics requires.
    """

    def vth_shift(self, gate: str, branch: str) -> float:
        """Additional threshold voltage [V] for ``gate`` ('pgs'|'cg'|'pgd').

        ``branch`` is ``'n'`` or ``'p'``; positive shifts always make the
        branch harder to turn on.
        """
        del gate, branch
        return 0.0

    def segment_factor(self, gate: str, branch: str) -> float:
        """Multiplicative factor on the activation of ``gate``'s segment."""
        del gate, branch
        return 1.0

    def channel_factor(self) -> float:
        """Multiplicative factor on the total channel current."""
        return 1.0

    def shunt_spec(self) -> tuple[str, float, float] | None:
        """Gate-to-channel shunt as ``(gate, resistance, alpha_drain)``.

        ``alpha_drain`` is the fraction of the shunt current that enters
        the channel on the drain side (position of the defect along the
        channel).  ``None`` means no shunt.
        """
        return None

    # ------------------------------------------------------------------
    # Hooks called by TIGSiNWFET (generic implementations in terms of the
    # overridable queries above).
    # ------------------------------------------------------------------
    def scale_channel_current(
        self, model: "TIGSiNWFET", current: np.ndarray
    ) -> np.ndarray:
        del model
        return current * self.channel_factor()

    def extra_drain_current(
        self,
        model: "TIGSiNWFET",
        v_cg: np.ndarray,
        v_pgs: np.ndarray,
        v_pgd: np.ndarray,
        v_d: np.ndarray,
        v_s: np.ndarray,
    ) -> np.ndarray | float:
        """Additional current into the drain (e.g. from a GOS shunt)."""
        spec = self.shunt_spec()
        if spec is None:
            return 0.0
        gate, resistance, alpha = spec
        v_gate = {"pgs": v_pgs, "cg": v_cg, "pgd": v_pgd}[gate]
        v_channel = alpha * np.asarray(v_d, dtype=float) + (
            1.0 - alpha
        ) * np.asarray(v_s, dtype=float)
        i_shunt = (np.asarray(v_gate, dtype=float) - v_channel) / resistance
        return alpha * i_shunt

    def add_shunt_currents(
        self,
        model: "TIGSiNWFET",
        currents: dict[str, float],
        v_cg: float,
        v_pgs: float,
        v_pgd: float,
        v_d: float,
        v_s: float,
    ) -> None:
        """Add shunt contributions to a terminal-current dictionary.

        The dictionary's ``d`` entry comes from
        :meth:`~repro.device.tig_model.TIGSiNWFET.drain_current`, which
        already includes the shunt's drain-side share, so only the gate
        and source entries are adjusted here (keeping the terminal sum at
        zero).
        """
        del model
        spec = self.shunt_spec()
        if spec is None:
            return
        gate, resistance, alpha = spec
        v_gate = {"pgs": v_pgs, "cg": v_cg, "pgd": v_pgd}[gate]
        v_channel = alpha * v_d + (1.0 - alpha) * v_s
        i_shunt = (v_gate - v_channel) / resistance
        currents[gate] -= i_shunt
        currents["s"] += i_shunt


@dataclasses.dataclass(frozen=True)
class GateOxideShort(DeviceDefect):
    """Gate-oxide short at one of the three gates.

    Calibration (severity = 1) reproduces the Fig. 3 behaviour for an
    n-configured device:

    * ``location='pgs'``: strongest ID(SAT) reduction (to ~0.45x) and a
      ~+170 mV threshold shift — the defect absorbs carriers right at the
      injection point (Fig. 4: channel density drops to ~1.4e17 cm^-3).
    * ``location='cg'``: milder reduction (~0.7x), ~+100 mV shift.
    * ``location='pgd'``: slight ID *increase* (field enhancement near the
      quasi-ballistic drain end) and no threshold shift.

    All locations add a gate-to-channel resistive shunt which yields the
    small negative drain current at low VCG seen in Fig. 3.

    Args:
        location: Which gate is shorted ('pgs', 'cg' or 'pgd').
        severity: Defect size scaling in (0, 1]; 1 is the paper's
            calibrated defect, smaller values model smaller pinholes.
    """

    location: str
    severity: float = 1.0

    #: location -> (segment factor, CG threshold shift [V], shunt alpha).
    _CALIBRATION = {
        "pgs": (0.20, 0.17, 0.15),
        "cg": (0.45, 0.10, 0.50),
        "pgd": (1.15, 0.00, 0.85),
    }

    _R_SHUNT_BASE = 1.5e7
    """Base gate-channel shunt resistance [Ohm] at severity 1."""

    def __post_init__(self) -> None:
        if self.location not in GATE_TERMINALS:
            raise ValueError(
                f"GOS location must be one of {GATE_TERMINALS}, "
                f"got {self.location!r}"
            )
        if not 0 < self.severity <= 1:
            raise ValueError("severity must be in (0, 1]")

    def vth_shift(self, gate: str, branch: str) -> float:
        del branch
        if gate != "cg":
            return 0.0
        return self._CALIBRATION[self.location][1] * self.severity

    def segment_factor(self, gate: str, branch: str) -> float:
        del branch
        if gate != self.location:
            return 1.0
        base = self._CALIBRATION[self.location][0]
        return base**self.severity

    def shunt_spec(self) -> tuple[str, float, float]:
        alpha = self._CALIBRATION[self.location][2]
        return (self.location, self._R_SHUNT_BASE / self.severity, alpha)


@dataclasses.dataclass(frozen=True)
class ChannelBreak(DeviceDefect):
    """Severed nanowire channel (Table I steps 1-2: patterning/etching).

    Args:
        fraction: Severity of the break.  1.0 is a complete break (the
            channel current collapses to a ~1e-9 residue of its nominal
            value, i.e. an open); values below one model a partially
            broken wire that merely limits the driving current — the
            paper's "drastically limit the driving current" delay-fault
            case.
    """

    fraction: float = 1.0

    _FULL_BREAK_RESIDUE = 1e-9

    def __post_init__(self) -> None:
        if not 0 <= self.fraction <= 1:
            raise ValueError("fraction must be in [0, 1]")

    def channel_factor(self) -> float:
        return (1.0 - self.fraction) + self.fraction * self._FULL_BREAK_RESIDUE

    @property
    def is_full_break(self) -> bool:
        """True when the wire is completely severed (a stuck-open site)."""
        return self.fraction >= 1.0


@dataclasses.dataclass(frozen=True)
class ParameterDrift(DeviceDefect):
    """Process variation / line-edge-roughness induced parameter drift.

    Models the paper's motivation that "process variation negatively
    affects the driving current of transistors and consequently results in
    delay faults".

    Args:
        dvth_cg: Control-gate threshold shift [V].
        dvth_pg: Polarity-gate threshold shift [V].
        i_on_factor: Multiplicative drive-current drift.
    """

    dvth_cg: float = 0.0
    dvth_pg: float = 0.0
    i_on_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.i_on_factor <= 0:
            raise ValueError("i_on_factor must be positive")

    def vth_shift(self, gate: str, branch: str) -> float:
        del branch
        if gate == "cg":
            return self.dvth_cg
        return self.dvth_pg

    def channel_factor(self) -> float:
        return self.i_on_factor
