"""Process-level memo for compact-model instances and table models.

Campaigns, demos and fault-injection loops repeatedly instantiate the
same device: ``TIGSiNWFET(DEFAULT_PARAMS, GateOxideShort('pgs'))`` is
built once per injected fault site, and a :class:`TableModel` resamples
the full 4-D TCAD grid on every construction.  Both are pure functions
of ``(DeviceParameters, defect)`` — frozen, hashable dataclasses — so
identical requests can share one immutable instance per process.

:func:`cached_device` and :func:`cached_table_model` are the memoised
constructors; :func:`clear_model_caches` invalidates everything (e.g.
after monkeypatching physics constants in tests), and
:func:`model_cache_stats` exposes hit/miss counters so tests and
benchmarks can assert the memo actually short-circuits rebuilds.
"""

from __future__ import annotations

from repro.device.defects import DeviceDefect
from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.device.table_model import TableModel
from repro.device.tig_model import TIGSiNWFET

_DEVICE_CACHE: dict[tuple, TIGSiNWFET] = {}
_TABLE_CACHE: dict[tuple, TableModel] = {}
_STATS = {"device_hits": 0, "device_misses": 0,
          "table_hits": 0, "table_misses": 0}


def cached_device(
    params: DeviceParameters = DEFAULT_PARAMS,
    defect: DeviceDefect | None = None,
) -> TIGSiNWFET:
    """Memoised :class:`TIGSiNWFET` for a ``(params, defect)`` pair.

    The returned instance is shared — treat it as immutable (the model
    holds no solve-time state, so sharing across circuits is safe and
    also lets :class:`~repro.spice.mna.MNASystem` group identical
    devices into one vectorised evaluation batch).
    """
    key = (params, defect)
    device = _DEVICE_CACHE.get(key)
    if device is None:
        _STATS["device_misses"] += 1
        device = TIGSiNWFET(params, defect=defect)
        _DEVICE_CACHE[key] = device
    else:
        _STATS["device_hits"] += 1
    return device


def cached_table_model(
    params: DeviceParameters = DEFAULT_PARAMS,
    defect: DeviceDefect | None = None,
    grid_points: int = 25,
    vds_points: int = 17,
    margin: float = 0.2,
) -> TableModel:
    """Memoised :class:`TableModel` (one 4-D grid sample per process).

    Keyed by the full sampling recipe ``(params, defect, grid_points,
    vds_points, margin)``; the underlying device comes from
    :func:`cached_device` so the analytic model is shared too.
    """
    key = (params, defect, grid_points, vds_points, margin)
    table = _TABLE_CACHE.get(key)
    if table is None:
        _STATS["table_misses"] += 1
        table = TableModel(
            cached_device(params, defect),
            grid_points=grid_points,
            vds_points=vds_points,
            margin=margin,
        )
        _TABLE_CACHE[key] = table
    else:
        _STATS["table_hits"] += 1
    return table


def clear_model_caches() -> None:
    """Drop every memoised device and table model (and reset stats)."""
    _DEVICE_CACHE.clear()
    _TABLE_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


def model_cache_stats() -> dict[str, int]:
    """Snapshot of the hit/miss counters."""
    return dict(_STATS)
