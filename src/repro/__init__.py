"""repro: reproduction of "Fault Modeling in Controllable Polarity Silicon
Nanowire Circuits" (Ghasemzadeh Mohammadi, Gaillardon, De Micheli — DATE
2015).

The package provides, from the bottom up:

* :mod:`repro.device` — TIG-SiNWFET compact model + device-level defects,
* :mod:`repro.tcad` — 1-D Poisson/drift-diffusion solver ("TCAD-lite"),
* :mod:`repro.spice` — MNA circuit simulator (DC + transient),
* :mod:`repro.gates` — controllable-polarity logic-gate library (Fig. 2),
* :mod:`repro.logic` — switch-level and gate-level logic simulation,
* :mod:`repro.core` — the paper's contribution: CP fault models,
  inductive fault analysis, detectability analysis and test algorithms,
* :mod:`repro.atpg` — PODEM ATPG, polarity-fault and stuck-open test
  generation, fault simulation,
* :mod:`repro.circuits` — benchmark circuits built from the CP library,
* :mod:`repro.analysis` — experiment drivers for every paper table/figure,
* :mod:`repro.campaign` — orchestrated, sharded, resumable campaigns over
  circuits and fault classes, behind the ``python -m repro`` CLI.
"""

__version__ = "1.0.0"
