"""Build SPICE circuits from cell templates (testbench construction).

The paper characterises gates driven by ideal sources into a fan-out-of-4
(FO4) inverter load; :func:`build_cell_circuit` reproduces that setup:

* one voltage source per primary input (complement inputs derived with
  :class:`~repro.spice.waveforms.Complement`),
* the device under test, instantiated as ``<cell>.<transistor>``,
* optional FO4 load inverters hanging off ``out``,
* device parasitic capacitances from the Table II parameter set.
"""

from __future__ import annotations

import dataclasses

from repro.device.cache import cached_device, cached_table_model
from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.gates.cell import Cell
from repro.gates.library import INV
from repro.spice.netlist import Circuit
from repro.spice.waveforms import DC, Complement, Waveform


@dataclasses.dataclass
class Testbench:
    """A built cell testbench.

    Attributes:
        circuit: The SPICE circuit.
        cell: The cell under test.
        dut_prefix: Device-name prefix of the cell under test; transistor
            ``t1`` of the DUT is ``f"{dut_prefix}t1"``.
        vdd: Supply voltage.
    """

    circuit: Circuit
    cell: Cell
    dut_prefix: str
    vdd: float

    def device_name(self, transistor_name: str) -> str:
        return f"{self.dut_prefix}{transistor_name}"

    def set_input(self, name: str, waveform: Waveform | float) -> None:
        """Re-drive one primary input (complement source tracks it)."""
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        self.circuit.vsources[f"vin_{name}"].waveform = waveform
        comp_name = f"vin_{name}_n"
        if comp_name in self.circuit.vsources:
            self.circuit.vsources[comp_name].waveform = Complement(
                waveform, self.vdd
            )

    def set_vector(self, vector: tuple[int, ...]) -> None:
        """Apply a static logic vector to the primary inputs."""
        if len(vector) != self.cell.n_inputs:
            raise ValueError(
                f"{self.cell.name} expects {self.cell.n_inputs} bits"
            )
        for name, bit in zip(self.cell.inputs, vector):
            self.set_input(name, bit * self.vdd)

    def vector_bias(self, vector: tuple[int, ...]) -> dict[str, float]:
        """Source levels of a static logic vector, as a bias point.

        The returned mapping (input sources plus their tracking
        complements) feeds :func:`repro.spice.batched.solve_dc_sweep`
        without mutating any waveform — the batched equivalent of
        :meth:`set_vector`.
        """
        if len(vector) != self.cell.n_inputs:
            raise ValueError(
                f"{self.cell.name} expects {self.cell.n_inputs} bits"
            )
        point: dict[str, float] = {}
        for name, bit in zip(self.cell.inputs, vector):
            level = bit * self.vdd
            point[f"vin_{name}"] = level
            if f"vin_{name}_n" in self.circuit.vsources:
                point[f"vin_{name}_n"] = self.vdd - level
        return point


def _instantiate_cell(
    circuit: Circuit,
    cell: Cell,
    prefix: str,
    model: object,
    net_map: dict[str, str],
    params: DeviceParameters,
) -> None:
    """Add a cell's transistors (plus parasitics) to ``circuit``.

    ``net_map`` maps cell-template nets to circuit nets; unmapped internal
    nets are prefixed to stay private to the instance.
    """

    def resolve(net: str) -> str:
        if net in net_map:
            return net_map[net]
        if net in ("vdd", "gnd"):
            return {"vdd": "vdd", "gnd": "0"}[net]
        return f"{prefix}{net}"

    for t in cell.transistors:
        circuit.add_device(
            f"{prefix}{t.name}",
            model,
            d=resolve(t.d),
            cg=resolve(t.cg),
            pgs=resolve(t.pgs),
            pgd=resolve(t.pgd),
            s=resolve(t.s),
        )
        # Gate-input capacitance (CG plus both PGs when signal-driven)
        # and junction capacitance on drain/source.
        for gate_net in (t.cg, t.pgs, t.pgd):
            node = resolve(gate_net)
            if node not in ("vdd", "0"):
                circuit.add_capacitor(
                    f"{prefix}{t.name}_cg_{gate_net}"
                    f"_{len(circuit.capacitors)}",
                    node,
                    "0",
                    params.c_gate,
                )
        for junction_net in (t.d, t.s):
            node = resolve(junction_net)
            if node not in ("vdd", "0"):
                circuit.add_capacitor(
                    f"{prefix}{t.name}_cj_{junction_net}"
                    f"_{len(circuit.capacitors)}",
                    node,
                    "0",
                    params.c_junction,
                )


def build_cell_circuit(
    cell: Cell,
    input_waveforms: dict[str, Waveform | float] | None = None,
    fanout: int = 4,
    model: object | None = None,
    params: DeviceParameters = DEFAULT_PARAMS,
    extra_load_capacitance: float = 0.0,
    use_table_model: bool = False,
) -> Testbench:
    """Build the standard characterisation testbench for ``cell``.

    Args:
        cell: Cell under test.
        input_waveforms: Optional drive per input name; defaults to 0 V.
        fanout: Number of INV loads on the output (0 disables).
        model: Compact model shared by all fault-free devices; defaults
            to the process-memoised fault-free
            :class:`~repro.device.tig_model.TIGSiNWFET` for ``params``.
        params: Device parameters (used for parasitics and VDD).
        extra_load_capacitance: Additional lumped load on ``out``.
        use_table_model: Simulate with the sampled look-up-table model
            (the paper's Verilog-A stand-in) instead of the analytic
            device.  The 4-D grid is sampled once per process and
            memoised via
            :func:`~repro.device.cache.cached_table_model`.
    """
    if model is None:
        model = (
            cached_table_model(params)
            if use_table_model
            else cached_device(params)
        )
    vdd = params.vdd
    circuit = Circuit(f"{cell.name}_tb")
    circuit.add_vsource("vdd", "vdd", "0", vdd)

    waveforms = dict(input_waveforms or {})
    complements = cell.complement_nets()
    for name in cell.inputs:
        waveform = waveforms.get(name, 0.0)
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        circuit.add_vsource(f"vin_{name}", name, "0", waveform)
        if f"{name}_n" in complements:
            circuit.add_vsource(
                f"vin_{name}_n", f"{name}_n", "0", Complement(waveform, vdd)
            )

    dut_prefix = f"{cell.name.lower()}."
    net_map = {"out": "out"}
    net_map.update({name: name for name in cell.inputs})
    net_map.update({name: name for name in complements})
    _instantiate_cell(circuit, cell, dut_prefix, model, net_map, params)

    for k in range(fanout):
        load_prefix = f"load{k}."
        _instantiate_cell(
            circuit,
            INV,
            load_prefix,
            model,
            {"a": "out", "out": f"load{k}_out"},
            params,
        )
        circuit.add_capacitor(
            f"cl_load{k}", f"load{k}_out", "0", params.c_junction
        )
    if extra_load_capacitance > 0.0:
        circuit.add_capacitor("cl_extra", "out", "0", extra_load_capacitance)
    if fanout == 0 and extra_load_capacitance == 0.0:
        # Keep the output node capacitive so transients are well-posed.
        circuit.add_capacitor("cl_min", "out", "0", params.c_junction)
    return Testbench(
        circuit=circuit, cell=cell, dut_prefix=dut_prefix, vdd=vdd
    )
