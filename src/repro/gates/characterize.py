"""Gate characterisation: truth tables, delay and leakage via SPICE.

These are the measurement routines behind the paper's Fig. 5 experiments
and behind the library's own validation tests (every cell's DC truth
table must match its reference Boolean function).
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.gates.builder import Testbench, build_cell_circuit
from repro.gates.cell import Cell
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level, propagation_delay
from repro.spice.transient import run_transient
from repro.spice.waveforms import Step


@dataclasses.dataclass(frozen=True)
class GateCharacterisation:
    """Summary of a gate's electrical behaviour."""

    cell_name: str
    truth_table_ok: bool
    worst_delay: float
    worst_static_leakage: float
    output_levels: dict[tuple[int, ...], float]


def dc_truth_table(
    bench: Testbench,
) -> dict[tuple[int, ...], tuple[float, int | None]]:
    """Measured (voltage, logic value) of ``out`` for every input vector."""
    cell = bench.cell
    table: dict[tuple[int, ...], tuple[float, int | None]] = {}
    for vector in itertools.product((0, 1), repeat=cell.n_inputs):
        bench.set_vector(vector)
        op = solve_dc(bench.circuit)
        v_out = op.voltage("out")
        table[vector] = (v_out, logic_level(v_out, bench.vdd))
    return table


def verify_truth_table(bench: Testbench) -> bool:
    """True when the measured DC truth table matches the reference."""
    reference = bench.cell.truth_table()
    measured = dc_truth_table(bench)
    return all(
        measured[vector][1] == expected
        for vector, expected in reference.items()
    )


def static_leakage(bench: Testbench, vector: tuple[int, ...]) -> float:
    """IDDQ (supply current magnitude) for a static input vector."""
    bench.set_vector(vector)
    op = solve_dc(bench.circuit)
    return op.supply_current("vdd")


def worst_static_leakage(bench: Testbench) -> tuple[float, tuple[int, ...]]:
    """Maximum IDDQ over all input vectors, with its vector."""
    worst = (0.0, (0,) * bench.cell.n_inputs)
    for vector in itertools.product((0, 1), repeat=bench.cell.n_inputs):
        leak = static_leakage(bench, vector)
        if leak > worst[0]:
            worst = (leak, vector)
    return worst


def transition_delay(
    bench: Testbench,
    input_name: str,
    other_bits: dict[str, int],
    rising: bool = True,
    t_edge: float = 200e-12,
    t_stop: float = 1.4e-9,
    dt: float = 2e-12,
) -> float:
    """Propagation delay for one input edge, other inputs held static.

    Returns ``inf`` when the output never responds (stuck gate).
    """
    vdd = bench.vdd
    for name, bit in other_bits.items():
        bench.set_input(name, bit * vdd)
    v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
    bench.set_input(input_name, Step(v0, v1, t_edge, 20e-12))
    result = run_transient(bench.circuit, t_stop, dt)
    return propagation_delay(result, input_name, "out", vdd)


def worst_case_delay(
    bench: Testbench,
    t_edge: float = 200e-12,
    t_stop: float = 1.4e-9,
    dt: float = 2e-12,
) -> float:
    """Worst delay over all single-input transitions that flip the output."""
    cell = bench.cell
    reference = cell.truth_table()
    worst = 0.0
    for k, input_name in enumerate(cell.inputs):
        for other_vector in itertools.product(
            (0, 1), repeat=cell.n_inputs - 1
        ):
            bits = list(other_vector)
            low = tuple(bits[:k] + [0] + bits[k:])
            high = tuple(bits[:k] + [1] + bits[k:])
            if reference[low] == reference[high]:
                continue  # this edge does not flip the output
            others = {
                name: bit
                for name, bit in zip(cell.inputs, low)
                if name != input_name
            }
            for rising in (True, False):
                delay = transition_delay(
                    bench, input_name, others, rising=rising,
                    t_edge=t_edge, t_stop=t_stop, dt=dt,
                )
                worst = max(worst, delay)
    return worst


def characterise(
    cell: Cell,
    params: DeviceParameters = DEFAULT_PARAMS,
    fanout: int = 4,
) -> GateCharacterisation:
    """Full characterisation of a library cell."""
    bench = build_cell_circuit(cell, fanout=fanout, params=params)
    measured = dc_truth_table(bench)
    reference = cell.truth_table()
    ok = all(
        measured[v][1] == expected for v, expected in reference.items()
    )
    leak, _vector = worst_static_leakage(bench)
    delay = worst_case_delay(bench)
    return GateCharacterisation(
        cell_name=cell.name,
        truth_table_ok=ok,
        worst_delay=delay,
        worst_static_leakage=leak,
        output_levels={v: volts for v, (volts, _) in measured.items()},
    )
