"""Gate characterisation: truth tables, delay and leakage via SPICE.

These are the measurement routines behind the paper's Fig. 5 experiments
and behind the library's own validation tests (every cell's DC truth
table must match its reference Boolean function).

All DC measurements run through the batched analog engine by default:
one shared :class:`~repro.spice.mna.MNASystem` and one vectorized
multi-point Newton solve over every input vector, instead of a fresh
system assembly and scalar solve per vector.  ``engine="sequential"``
keeps a scalar path that still shares one system and warm-starts each
Gray-code-adjacent vector from the previous solution (adjacent vectors
differ in one input, so the previous operating point is an excellent
initial guess).
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.device.params import DEFAULT_PARAMS, DeviceParameters
from repro.gates.builder import Testbench, build_cell_circuit
from repro.gates.cell import Cell
from repro.spice.batched import (
    DCSweepResult,
    run_transient_sweep,
    solve_dc_sweep,
)
from repro.spice.dc import solve_dc
from repro.spice.measure import logic_level, propagation_delay
from repro.spice.mna import MNASystem
from repro.spice.transient import run_transient
from repro.spice.waveforms import Complement, DC, Step


@dataclasses.dataclass(frozen=True)
class GateCharacterisation:
    """Summary of a gate's electrical behaviour."""

    cell_name: str
    truth_table_ok: bool
    worst_delay: float
    worst_static_leakage: float
    output_levels: dict[tuple[int, ...], float]


def all_vectors(cell: Cell) -> list[tuple[int, ...]]:
    """Every input vector of ``cell``, in binary counting order."""
    return list(itertools.product((0, 1), repeat=cell.n_inputs))


def gray_vectors(cell: Cell) -> list[tuple[int, ...]]:
    """Every input vector in reflected-Gray-code order.

    Adjacent vectors differ in exactly one bit, which makes the previous
    operating point the natural warm start for the next solve.
    """
    n = cell.n_inputs
    vectors = []
    for k in range(1 << n):
        gray = k ^ (k >> 1)
        vectors.append(
            tuple((gray >> (n - 1 - bit)) & 1 for bit in range(n))
        )
    return vectors


def vector_sweep(
    bench: Testbench,
    system: MNASystem | None = None,
    mode: str = "exact",
) -> tuple[list[tuple[int, ...]], DCSweepResult]:
    """One batched DC solve over every input vector of the bench.

    Returns ``(vectors, sweep)``; the sweep rows are aligned with the
    vector list.  This is the shared kernel behind
    :func:`dc_truth_table`, :func:`worst_static_leakage` and
    :func:`characterise` — truth table and IDDQ come out of the same
    solve.
    """
    vectors = all_vectors(bench.cell)
    sweep = solve_dc_sweep(
        bench.circuit,
        [bench.vector_bias(v) for v in vectors],
        system=system,
        mode=mode,
    )
    return vectors, sweep


def dc_truth_table(
    bench: Testbench,
    engine: str = "batched",
    system: MNASystem | None = None,
    mode: str = "exact",
) -> dict[tuple[int, ...], tuple[float, int | None]]:
    """Measured (voltage, logic value) of ``out`` for every input vector.

    ``engine="batched"`` (default) solves all vectors in one vectorized
    multi-point Newton call; ``engine="sequential"`` solves one vector
    at a time on a shared system, Gray-code ordered with warm-started
    initial guesses.  ``mode`` is forwarded to
    :func:`~repro.spice.batched.solve_dc_sweep`; the default stays on
    the exact sequential-identical schedule so defect screening never
    silently lands on a different DC branch — pass ``mode="fast"`` for
    fault-free library sweeps where speed matters.
    """
    cell = bench.cell
    vdd = bench.vdd
    table: dict[tuple[int, ...], tuple[float, int | None]] = {}
    if engine == "batched":
        vectors, sweep = vector_sweep(bench, system=system, mode=mode)
        v_out = sweep.voltages("out")
        for k, vector in enumerate(vectors):
            table[vector] = (
                float(v_out[k]), logic_level(float(v_out[k]), vdd)
            )
        return table
    if engine != "sequential":
        raise ValueError(f"unknown engine {engine!r}")
    mna = system if system is not None else MNASystem(bench.circuit)
    x = None
    for vector in gray_vectors(cell):
        bench.set_vector(vector)
        x = mna.solve_dc_continuation(t=0.0, x0=x)
        v_out = float(x[mna.node_index["out"]])
        table[vector] = (v_out, logic_level(v_out, vdd))
    return {v: table[v] for v in all_vectors(cell)}


def verify_truth_table(
    bench: Testbench, engine: str = "batched", mode: str = "exact"
) -> bool:
    """True when the measured DC truth table matches the reference."""
    reference = bench.cell.truth_table()
    measured = dc_truth_table(bench, engine=engine, mode=mode)
    return all(
        measured[vector][1] == expected
        for vector, expected in reference.items()
    )


def static_leakage(
    bench: Testbench,
    vector: tuple[int, ...],
    system: MNASystem | None = None,
) -> float:
    """IDDQ (supply current magnitude) for a static input vector."""
    bench.set_vector(vector)
    op = solve_dc(bench.circuit, system=system)
    return op.supply_current("vdd")


def worst_static_leakage(
    bench: Testbench,
    engine: str = "batched",
    system: MNASystem | None = None,
    mode: str = "exact",
) -> tuple[float, tuple[int, ...]]:
    """Maximum IDDQ over all input vectors, with its vector.

    ``mode="exact"`` (default) keeps the IDDQ screen on the
    sequential-identical schedule (see :func:`dc_truth_table`).
    """
    if engine == "batched":
        vectors, sweep = vector_sweep(bench, system=system, mode=mode)
        iddq = sweep.supply_currents("vdd")
        worst = int(iddq.argmax())
        if iddq[worst] <= 0.0:
            return (0.0, (0,) * bench.cell.n_inputs)
        return (float(iddq[worst]), vectors[worst])
    if engine != "sequential":
        raise ValueError(f"unknown engine {engine!r}")
    worst = (0.0, (0,) * bench.cell.n_inputs)
    for vector in itertools.product((0, 1), repeat=bench.cell.n_inputs):
        leak = static_leakage(bench, vector, system=system)
        if leak > worst[0]:
            worst = (leak, vector)
    return worst


def transition_delay(
    bench: Testbench,
    input_name: str,
    other_bits: dict[str, int],
    rising: bool = True,
    t_edge: float = 200e-12,
    t_stop: float = 1.4e-9,
    dt: float = 2e-12,
) -> float:
    """Propagation delay for one input edge, other inputs held static.

    Returns ``inf`` when the output never responds (stuck gate).
    """
    vdd = bench.vdd
    for name, bit in other_bits.items():
        bench.set_input(name, bit * vdd)
    v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
    bench.set_input(input_name, Step(v0, v1, t_edge, 20e-12))
    result = run_transient(bench.circuit, t_stop, dt)
    return propagation_delay(result, input_name, "out", vdd)


def _flipping_transitions(
    cell: Cell,
) -> list[tuple[str, dict[str, int], bool]]:
    """All (input, other-bits, rising) edges that flip the output."""
    reference = cell.truth_table()
    transitions = []
    for k, input_name in enumerate(cell.inputs):
        for other_vector in itertools.product(
            (0, 1), repeat=cell.n_inputs - 1
        ):
            bits = list(other_vector)
            low = tuple(bits[:k] + [0] + bits[k:])
            high = tuple(bits[:k] + [1] + bits[k:])
            if reference[low] == reference[high]:
                continue  # this edge does not flip the output
            others = {
                name: bit
                for name, bit in zip(cell.inputs, low)
                if name != input_name
            }
            for rising in (True, False):
                transitions.append((input_name, others, rising))
    return transitions


def worst_case_delay(
    bench: Testbench,
    t_edge: float = 200e-12,
    t_stop: float = 1.4e-9,
    dt: float = 2e-12,
    engine: str = "batched",
    system: MNASystem | None = None,
) -> float:
    """Worst delay over all single-input transitions that flip the output.

    The batched engine integrates every transition as one lockstep
    transient sweep (per-point source-drive overrides on a shared
    circuit); the sequential engine runs one transient per transition.
    """
    cell = bench.cell
    transitions = _flipping_transitions(cell)
    if not transitions:
        return 0.0
    if engine == "sequential":
        worst = 0.0
        for input_name, others, rising in transitions:
            delay = transition_delay(
                bench, input_name, others, rising=rising,
                t_edge=t_edge, t_stop=t_stop, dt=dt,
            )
            worst = max(worst, delay)
        return worst
    if engine != "batched":
        raise ValueError(f"unknown engine {engine!r}")
    vdd = bench.vdd
    overrides = []
    for input_name, others, rising in transitions:
        v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
        point: dict[str, object] = {}

        def drive(name: str, waveform) -> None:
            point[f"vin_{name}"] = waveform
            if f"vin_{name}_n" in bench.circuit.vsources:
                point[f"vin_{name}_n"] = Complement(waveform, vdd)

        for name, bit in others.items():
            drive(name, DC(bit * vdd))
        drive(input_name, Step(v0, v1, t_edge, 20e-12))
        overrides.append(point)
    results = run_transient_sweep(
        bench.circuit, overrides, t_stop, dt, system=system
    )
    worst = 0.0
    for (input_name, _others, _rising), result in zip(transitions, results):
        worst = max(
            worst, propagation_delay(result, input_name, "out", vdd)
        )
    return worst


def characterise(
    cell: Cell,
    params: DeviceParameters = DEFAULT_PARAMS,
    fanout: int = 4,
    engine: str = "batched",
) -> GateCharacterisation:
    """Full characterisation of a library cell.

    With the batched engine the DC part (truth table + worst IDDQ) is
    one multi-point solve and the delay part one lockstep transient
    sweep, all on a single shared :class:`MNASystem`.
    """
    bench = build_cell_circuit(cell, fanout=fanout, params=params)
    reference = cell.truth_table()
    if engine == "batched":
        system = MNASystem(bench.circuit)
        vectors, sweep = vector_sweep(bench, system=system)
        v_out = sweep.voltages("out")
        measured = {
            vector: (float(v_out[k]), logic_level(float(v_out[k]), bench.vdd))
            for k, vector in enumerate(vectors)
        }
        leak = float(sweep.supply_currents("vdd").max())
        delay = worst_case_delay(bench, engine="batched", system=system)
    else:
        measured = dc_truth_table(bench, engine=engine)
        leak, _vector = worst_static_leakage(bench, engine=engine)
        delay = worst_case_delay(bench, engine=engine)
    ok = all(
        measured[v][1] == expected for v, expected in reference.items()
    )
    return GateCharacterisation(
        cell_name=cell.name,
        truth_table_ok=ok,
        worst_delay=delay,
        worst_static_leakage=leak,
        output_levels={v: volts for v, (volts, _) in measured.items()},
    )
