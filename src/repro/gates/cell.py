"""Cell abstraction: transistor-level templates of CP logic gates.

A :class:`Cell` is a named transistor netlist over symbolic nets plus a
reference Boolean function.  Net naming conventions:

* ``vdd`` / ``gnd`` — supply rails,
* ``a``, ``b``, ``c`` … — primary inputs,
* ``a_n``, ``b_n`` … — complemented inputs (DP gates receive input
  complements, as drawn in the paper's Fig. 2),
* ``out`` — the cell output,
* ``x1``, ``x2`` … — internal nodes.

Each transistor records which nets drive its five terminals and a
``role`` tag ('pull_up' / 'pull_down' / 'pass') used by fault-model
bookkeeping (Table III distinguishes pull-up from pull-down faults).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable

RAIL_NETS = ("vdd", "gnd")

#: Category constants (paper Section III-C).
STATIC_POLARITY = "SP"
DYNAMIC_POLARITY = "DP"


@dataclasses.dataclass(frozen=True)
class Transistor:
    """One TIG-SiNWFET in a cell template.

    Attributes:
        name: Instance name; follows the paper's t1..t4 labels where the
            paper names them.
        d: Net on the drain terminal.
        cg: Net driving the control gate.
        pgs: Net driving the source-side polarity gate.
        pgd: Net driving the drain-side polarity gate.
        s: Net on the source terminal.
        role: 'pull_up', 'pull_down' or 'pass'.
    """

    name: str
    d: str
    cg: str
    pgs: str
    pgd: str
    s: str
    role: str

    def __post_init__(self) -> None:
        if self.role not in ("pull_up", "pull_down", "pass"):
            raise ValueError(f"bad role {self.role!r}")

    @property
    def pg(self) -> str:
        """The polarity net when both polarity gates share a driver."""
        if self.pgs != self.pgd:
            raise ValueError(
                f"{self.name}: polarity gates driven by different nets"
            )
        return self.pgs

    def nets(self) -> set[str]:
        return {self.d, self.cg, self.pgs, self.pgd, self.s}


@dataclasses.dataclass(frozen=True)
class Cell:
    """A CP logic-gate template.

    Attributes:
        name: Cell name (e.g. 'XOR2').
        inputs: Ordered primary-input names.
        transistors: The transistor netlist.
        category: ``'SP'`` (polarity gates tied to rails) or ``'DP'``
            (polarity gates driven by input signals).
        function: Reference Boolean function mapping an input tuple
            (ordered as ``inputs``) to 0/1.
    """

    name: str
    inputs: tuple[str, ...]
    transistors: tuple[Transistor, ...]
    category: str
    function: Callable[[tuple[int, ...]], int]

    def __post_init__(self) -> None:
        if self.category not in (STATIC_POLARITY, DYNAMIC_POLARITY):
            raise ValueError(f"bad category {self.category!r}")
        names = [t.name for t in self.transistors]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate transistor names")
        if self.category == STATIC_POLARITY:
            for t in self.transistors:
                if t.pgs not in RAIL_NETS or t.pgd not in RAIL_NETS:
                    raise ValueError(
                        f"{self.name}: SP cell has signal-driven polarity "
                        f"gate on {t.name}"
                    )

    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def transistor(self, name: str) -> Transistor:
        for t in self.transistors:
            if t.name == name:
                return t
        raise KeyError(f"{self.name} has no transistor {name!r}")

    def complement_nets(self) -> tuple[str, ...]:
        """Input-complement nets used by this cell (DP gates only)."""
        used: set[str] = set()
        for t in self.transistors:
            used.update(t.nets())
        return tuple(
            sorted(n for n in used if n.endswith("_n"))
        )

    def internal_nets(self) -> tuple[str, ...]:
        special = set(RAIL_NETS) | set(self.inputs) | {"out"}
        special.update(self.complement_nets())
        used: set[str] = set()
        for t in self.transistors:
            used.update(t.nets())
        return tuple(sorted(used - special))

    def truth_table(self) -> dict[tuple[int, ...], int]:
        """Reference truth table from the cell's Boolean function."""
        table = {}
        for vector in itertools.product((0, 1), repeat=self.n_inputs):
            value = self.function(vector)
            if value not in (0, 1):
                raise ValueError(
                    f"{self.name}.function returned {value!r} for {vector}"
                )
            table[vector] = value
        return table

    def net_values(
        self, vector: tuple[int, ...], vdd_level: int = 1
    ) -> dict[str, int]:
        """Logic values of every driven net for an input vector.

        Covers rails, inputs and input complements — the nets whose values
        are imposed from outside the transistor network.
        """
        if len(vector) != self.n_inputs:
            raise ValueError(
                f"{self.name} expects {self.n_inputs} inputs, "
                f"got {len(vector)}"
            )
        values: dict[str, int] = {"vdd": vdd_level, "gnd": 0}
        for net, bit in zip(self.inputs, vector):
            if bit not in (0, 1):
                raise ValueError(f"input bits must be 0/1, got {bit!r}")
            values[net] = bit
            values[net + "_n"] = 1 - bit
        return values
