"""The CP logic-gate library (paper Fig. 2).

Static-polarity (SP) gates tie their polarity gates to the rails
(pull-up devices p-configured with PG = GND, pull-down devices
n-configured with PG = VDD): INV, NAND2/3, NOR2/3.

Dynamic-polarity (DP) gates derive the polarity gates from input
signals, exploiting the intrinsic XOR characteristic of the conduction
condition ``CG == PGS == PGD``: XOR2, XNOR2, XOR3, MAJ3, MIN3.  Every
DP network is built from *redundant pairs*: for each conducting input
combination two devices conduct (one n-configured, one p-configured),
which restores the output level like a transmission gate — and, as
Section V-C of the paper exploits, masks single channel breaks.

Transistor names follow the paper where it names them: the INV uses t1
(pull-up) / t3 (pull-down) as in Fig. 5; NAND/NOR and XOR2 use t1..t4
with t1/t2 in the pull-up and t3/t4 in the pull-down (Table III).
"""

from __future__ import annotations

from repro.gates.cell import (
    Cell,
    DYNAMIC_POLARITY,
    STATIC_POLARITY,
    Transistor,
)


def _pu(name: str, cg: str, d: str = "out", s: str = "vdd") -> Transistor:
    """SP pull-up: p-configured (polarity gates at GND)."""
    return Transistor(name, d=d, cg=cg, pgs="gnd", pgd="gnd", s=s,
                      role="pull_up")


def _pd(name: str, cg: str, d: str = "out", s: str = "gnd") -> Transistor:
    """SP pull-down: n-configured (polarity gates at VDD)."""
    return Transistor(name, d=d, cg=cg, pgs="vdd", pgd="vdd", s=s,
                      role="pull_down")


def _dp(
    name: str, cg: str, pg: str, role: str, d: str = "out", s: str = "vdd"
) -> Transistor:
    """DP device: both polarity gates driven by the same signal net."""
    return Transistor(name, d=d, cg=cg, pgs=pg, pgd=pg, s=s, role=role)


INV = Cell(
    name="INV",
    inputs=("a",),
    category=STATIC_POLARITY,
    function=lambda v: 1 - v[0],
    transistors=(
        _pu("t1", cg="a"),
        _pd("t3", cg="a"),
    ),
)

NAND2 = Cell(
    name="NAND2",
    inputs=("a", "b"),
    category=STATIC_POLARITY,
    function=lambda v: 1 - (v[0] & v[1]),
    transistors=(
        _pu("t1", cg="a"),
        _pu("t2", cg="b"),
        _pd("t3", cg="a", d="out", s="x1"),
        _pd("t4", cg="b", d="x1", s="gnd"),
    ),
)

NOR2 = Cell(
    name="NOR2",
    inputs=("a", "b"),
    category=STATIC_POLARITY,
    function=lambda v: 1 - (v[0] | v[1]),
    transistors=(
        _pu("t1", cg="a", d="x1", s="vdd"),
        _pu("t2", cg="b", d="out", s="x1"),
        _pd("t3", cg="a"),
        _pd("t4", cg="b"),
    ),
)

NAND3 = Cell(
    name="NAND3",
    inputs=("a", "b", "c"),
    category=STATIC_POLARITY,
    function=lambda v: 1 - (v[0] & v[1] & v[2]),
    transistors=(
        _pu("t1", cg="a"),
        _pu("t2", cg="b"),
        _pu("t3", cg="c"),
        _pd("t4", cg="a", d="out", s="x1"),
        _pd("t5", cg="b", d="x1", s="x2"),
        _pd("t6", cg="c", d="x2", s="gnd"),
    ),
)

NOR3 = Cell(
    name="NOR3",
    inputs=("a", "b", "c"),
    category=STATIC_POLARITY,
    function=lambda v: 1 - (v[0] | v[1] | v[2]),
    transistors=(
        _pu("t1", cg="a", d="x1", s="vdd"),
        _pu("t2", cg="b", d="x2", s="x1"),
        _pu("t3", cg="c", d="out", s="x2"),
        _pd("t4", cg="a"),
        _pd("t5", cg="b"),
        _pd("t6", cg="c"),
    ),
)

# ---------------------------------------------------------------------------
# Dynamic-polarity gates.
#
# XOR2 (Table III topology; see DESIGN.md):
#   t1: CG=~A, PG=B   conducts iff ~A == B   (A xor B)  pull-up
#   t2: CG=A,  PG=~B  conducts iff A == ~B   (A xor B)  pull-up
#   t3: CG=~A, PG=~B  conducts iff ~A == ~B  (A == B)   pull-down
#   t4: CG=A,  PG=B   conducts iff A == B    (A == B)   pull-down
#
# The gate assignments within each redundant pair are chosen so that for
# every conducting input combination one member is n-configured and the
# other p-configured — the pair acts like a transmission gate, restoring
# full output swing (pull-up: strong-1 through the p-mode member;
# pull-down: strong-0 through the n-mode member).
# ---------------------------------------------------------------------------

XOR2 = Cell(
    name="XOR2",
    inputs=("a", "b"),
    category=DYNAMIC_POLARITY,
    function=lambda v: v[0] ^ v[1],
    transistors=(
        _dp("t1", cg="a_n", pg="b", role="pull_up"),
        _dp("t2", cg="a", pg="b_n", role="pull_up"),
        _dp("t3", cg="a_n", pg="b_n", role="pull_down", s="gnd"),
        _dp("t4", cg="a", pg="b", role="pull_down", s="gnd"),
    ),
)

XNOR2 = Cell(
    name="XNOR2",
    inputs=("a", "b"),
    category=DYNAMIC_POLARITY,
    function=lambda v: 1 - (v[0] ^ v[1]),
    transistors=(
        _dp("t1", cg="a", pg="b", role="pull_up"),
        _dp("t2", cg="a_n", pg="b_n", role="pull_up"),
        _dp("t3", cg="b_n", pg="a", role="pull_down", s="gnd"),
        _dp("t4", cg="a_n", pg="b", role="pull_down", s="gnd"),
    ),
)

# XOR3: two-stage XOR-intensive realisation.  Stage one computes the
# intermediate parity x1 = A xor B and its complement x2 = xnor(A, B) with
# two DP pairs; stage two XORs x1 with C.  This mirrors how parity trees
# are built from TIG cells in the CP-circuit literature and keeps every
# network a redundant pair (single channel breaks stay masked).
XOR3 = Cell(
    name="XOR3",
    inputs=("a", "b", "c"),
    category=DYNAMIC_POLARITY,
    function=lambda v: v[0] ^ v[1] ^ v[2],
    transistors=(
        # x1 = a xor b
        _dp("t1", cg="a_n", pg="b", role="pull_up", d="x1"),
        _dp("t2", cg="a", pg="b_n", role="pull_up", d="x1"),
        _dp("t3", cg="a_n", pg="b_n", role="pull_down", d="x1", s="gnd"),
        _dp("t4", cg="a", pg="b", role="pull_down", d="x1", s="gnd"),
        # x2 = xnor(a, b)
        _dp("t5", cg="a", pg="b", role="pull_up", d="x2"),
        _dp("t6", cg="a_n", pg="b_n", role="pull_up", d="x2"),
        _dp("t7", cg="b_n", pg="a", role="pull_down", d="x2", s="gnd"),
        _dp("t8", cg="a_n", pg="b", role="pull_down", d="x2", s="gnd"),
        # out = x1 xor c  (x2 serves as the complement of x1)
        _dp("t9", cg="x2", pg="c", role="pull_up"),
        _dp("t10", cg="x1", pg="c_n", role="pull_up"),
        _dp("t11", cg="x2", pg="c_n", role="pull_down", s="gnd"),
        _dp("t12", cg="x1", pg="c", role="pull_down", s="gnd"),
    ),
)

# MAJ3: pass-transistor majority.  If A == C the output follows A (= C),
# carried by the redundant pair t1/t2 (one member n-mode, one p-mode at
# each A == C combination); otherwise A != C and the output follows B,
# carried by t3/t4 (again one member per mode).
MAJ3 = Cell(
    name="MAJ3",
    inputs=("a", "b", "c"),
    category=DYNAMIC_POLARITY,
    function=lambda v: 1 if v[0] + v[1] + v[2] >= 2 else 0,
    transistors=(
        _dp("t1", cg="c", pg="a", role="pass", d="out", s="a"),
        _dp("t2", cg="a_n", pg="c_n", role="pass", d="out", s="c"),
        _dp("t3", cg="a", pg="c_n", role="pass", d="out", s="b"),
        _dp("t4", cg="c", pg="a_n", role="pass", d="out", s="b"),
    ),
)

MIN3 = Cell(
    name="MIN3",
    inputs=("a", "b", "c"),
    category=DYNAMIC_POLARITY,
    function=lambda v: 0 if v[0] + v[1] + v[2] >= 2 else 1,
    transistors=(
        _dp("t1", cg="c", pg="a", role="pass", d="out", s="a_n"),
        _dp("t2", cg="a_n", pg="c_n", role="pass", d="out", s="c_n"),
        _dp("t3", cg="a", pg="c_n", role="pass", d="out", s="b_n"),
        _dp("t4", cg="c", pg="a_n", role="pass", d="out", s="b_n"),
    ),
)

ALL_CELLS: dict[str, Cell] = {
    cell.name: cell
    for cell in (
        INV, NAND2, NOR2, NAND3, NOR3, XOR2, XNOR2, XOR3, MAJ3, MIN3
    )
}

SP_CELLS = {n: c for n, c in ALL_CELLS.items() if c.category == "SP"}
DP_CELLS = {n: c for n, c in ALL_CELLS.items() if c.category == "DP"}


def get_cell(name: str) -> Cell:
    """Look up a library cell by name (case-insensitive)."""
    key = name.upper()
    if key not in ALL_CELLS:
        raise KeyError(
            f"unknown cell {name!r}; available: {sorted(ALL_CELLS)}"
        )
    return ALL_CELLS[key]
