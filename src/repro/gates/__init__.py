"""Controllable-polarity logic-gate library (paper Fig. 2) and
characterisation testbenches."""

from repro.gates.builder import Testbench, build_cell_circuit
from repro.gates.cell import (
    Cell,
    DYNAMIC_POLARITY,
    STATIC_POLARITY,
    Transistor,
)
from repro.gates.characterize import (
    GateCharacterisation,
    characterise,
    dc_truth_table,
    static_leakage,
    transition_delay,
    verify_truth_table,
    worst_case_delay,
    worst_static_leakage,
)
from repro.gates.library import (
    ALL_CELLS,
    DP_CELLS,
    INV,
    MAJ3,
    MIN3,
    NAND2,
    NAND3,
    NOR2,
    NOR3,
    SP_CELLS,
    XNOR2,
    XOR2,
    XOR3,
    get_cell,
)

__all__ = [
    "ALL_CELLS",
    "Cell",
    "DP_CELLS",
    "DYNAMIC_POLARITY",
    "GateCharacterisation",
    "INV",
    "MAJ3",
    "MIN3",
    "NAND2",
    "NAND3",
    "NOR2",
    "NOR3",
    "SP_CELLS",
    "STATIC_POLARITY",
    "Testbench",
    "Transistor",
    "XNOR2",
    "XOR2",
    "XOR3",
    "build_cell_circuit",
    "characterise",
    "dc_truth_table",
    "get_cell",
    "static_leakage",
    "transition_delay",
    "verify_truth_table",
    "worst_case_delay",
    "worst_static_leakage",
]
