"""Seeded random networks, combinational and sequential (fuzzing +
scaling corpus).

Two consumers share this module:

* the **differential fuzz suites** (``tests/test_multiword_engine.py``
  and ``tests/test_sequential_engine.py``) draw batches of small random
  circuits — combinational via :func:`random_network`, sequential with
  DFFs via :func:`random_sequential_network` — and check the
  multi-word, single-word and legacy dict engines produce bit-identical
  detection matrices on every one, and
* the **ISCAS-class corpus generator** (``tools/gen_scaling_netlists.py``)
  materialises the thousands-of-gate ``.bench`` netlists checked into
  ``benchmarks/netlists/`` for the scaling benchmark tier — including
  the ISCAS-89-style sequential circuits of :data:`SEQ_CORPUS_RECIPES`.

Determinism is load-bearing in both roles: a seed must produce the
same netlist on every Python version and platform, because the corpus
files are regenerated and diffed in tests and the campaign layer
promises bit-identical stores across processes.  To that end the
generator only consumes :meth:`random.Random.random` — the one method
whose sequence the stdlib documents as reproducible across versions —
through the local :func:`_randbelow` helper, never ``choice`` /
``randrange`` / ``sample``.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.logic.network import GATE_ARITY, Network

#: Static-polarity pool, weighted toward the NAND/NOR idiom of the
#: ISCAS-85 netlists the corpus imitates.
SP_POOL: tuple[str, ...] = (
    "NAND2", "NAND2", "NAND2", "NAND2",
    "NOR2", "NOR2", "NOR2",
    "AND2", "AND2", "OR2", "OR2",
    "NAND3", "NAND3", "NOR3",
    "INV", "INV", "BUF",
)

#: Dynamic-polarity pool (the paper's Fig. 2 gates) — these carry the
#: polarity-fault population, so every corpus circuit includes some.
DP_POOL: tuple[str, ...] = (
    "XOR2", "XOR2", "XOR2",
    "XNOR2", "XNOR2",
    "XOR3", "XOR3",
    "MAJ3", "MAJ3",
    "MIN3",
)


def _randbelow(rng: random.Random, n: int) -> int:
    """Version-stable uniform draw from ``range(n)`` (see module doc)."""
    return min(int(rng.random() * n), n - 1)


def _sample_inputs(
    rng: random.Random, nets: list[str], arity: int, window: int
) -> list[str]:
    """Pick ``arity`` input nets, biased toward recent nets for depth.

    75% of picks come from the trailing ``window`` of the net list
    (building long reconvergent paths); the rest are uniform over every
    net so early PIs and gates keep fanning out.  Picks are distinct
    when the pools allow it (repeated-input gates are legal but rare in
    real netlists).
    """
    recent = nets[-window:] if len(nets) > window else nets
    picks: list[str] = []
    for _ in range(arity):
        pool = recent if rng.random() < 0.75 else nets
        candidate = pool[_randbelow(rng, len(pool))]
        for _ in range(8):
            if candidate not in picks:
                break
            candidate = pool[_randbelow(rng, len(pool))]
        picks.append(candidate)
    return picks


def random_network(
    seed: int,
    n_gates: int = 60,
    n_inputs: int = 8,
    dp_fraction: float = 0.25,
    name: str | None = None,
    window: int = 24,
) -> Network:
    """A seeded random combinational DAG over the CP cell library.

    Gates are appended in creation order (so the network is acyclic by
    construction), drawing ``dp_fraction`` of types from the DP pool
    and the rest from the SP pool; every net left unconsumed at the end
    becomes a primary output, so (almost) the whole circuit is
    observable and most faults are detectable.
    """
    if n_gates < 1 or n_inputs < 3:
        raise ValueError("need n_gates >= 1 and n_inputs >= 3")
    rng = random.Random(seed)
    network = Network(name or f"rand_s{seed}_g{n_gates}")
    nets: list[str] = []
    for k in range(n_inputs):
        net = f"i{k}"
        network.add_input(net)
        nets.append(net)
    consumed: set[str] = set()
    for g in range(n_gates):
        pool = DP_POOL if rng.random() < dp_fraction else SP_POOL
        gtype = pool[_randbelow(rng, len(pool))]
        ins = _sample_inputs(rng, nets, GATE_ARITY[gtype], window)
        out = f"n{g}"
        network.add_gate(f"g{g}", gtype, ins, out)
        consumed.update(ins)
        nets.append(out)
    for net in nets:
        if net not in consumed:
            network.add_output(net)
    network.validate()
    return network


def random_sequential_network(
    seed: int,
    n_gates: int = 40,
    n_inputs: int = 6,
    n_flops: int = 4,
    dp_fraction: float = 0.25,
    name: str | None = None,
    window: int = 24,
) -> Network:
    """A seeded random sequential circuit with single-clock DFFs.

    The flop outputs are available as sources from the start (state
    nets feed the combinational cloud like extra inputs, as in the
    ISCAS-89 netlists); each flop's data input is drawn from the late
    nets after the cloud is built, so state feedback loops through real
    logic.  Unconsumed nets become primary outputs, flop outputs
    included — observable state keeps most faults detectable within a
    few frames.  Determinism contract as :func:`random_network`.
    """
    if n_gates < 1 or n_inputs < 3 or n_flops < 1:
        raise ValueError(
            "need n_gates >= 1, n_inputs >= 3 and n_flops >= 1"
        )
    rng = random.Random(seed)
    network = Network(
        name or f"seqrand_s{seed}_g{n_gates}_f{n_flops}"
    )
    nets: list[str] = []
    for k in range(n_inputs):
        net = f"i{k}"
        network.add_input(net)
        nets.append(net)
    state_nets = [f"q{k}" for k in range(n_flops)]
    nets.extend(state_nets)  # usable as gate inputs before declaration
    consumed: set[str] = set()
    for g in range(n_gates):
        pool = DP_POOL if rng.random() < dp_fraction else SP_POOL
        gtype = pool[_randbelow(rng, len(pool))]
        ins = _sample_inputs(rng, nets, GATE_ARITY[gtype], window)
        out = f"n{g}"
        network.add_gate(f"g{g}", gtype, ins, out)
        consumed.update(ins)
        nets.append(out)
    # Data inputs: biased toward late (deep) nets, like _sample_inputs.
    for q in state_nets:
        data = _sample_inputs(rng, nets, 1, window)[0]
        network.add_flop(q, data)
        consumed.add(data)
    outputs = [n for n in nets if n not in consumed]
    if not outputs:
        outputs = [nets[-1]]  # everything consumed: observe the last net
    for net in outputs:
        network.add_output(net)
    network.validate()
    return network


#: Corpus recipes: name -> generator parameters.  Gate counts shadow
#: the ISCAS-85 circuits the names allude to (c432 / c880 / c1908);
#: the netlists themselves are synthetic — seeded draws from
#: :func:`random_network` with a c1908-like PI count and a DP-gate
#: minority so polarity faults exist at scale.
CORPUS_RECIPES: Mapping[str, dict] = {
    "cpx432": dict(seed=432, n_gates=432, n_inputs=36,
                   dp_fraction=0.15, window=30),
    "cpx880": dict(seed=880, n_gates=880, n_inputs=60,
                   dp_fraction=0.12, window=40),
    "cpx1908": dict(seed=1908, n_gates=1908, n_inputs=33,
                    dp_fraction=0.10, window=48),
}

#: Sequential corpus recipes (ISCAS-89-class): gate counts shadow
#: s344 / s1488 while PI and flop counts mirror the real circuits
#: (s344: 9 PI / 15 FF, s1488: 8 PI / 6 FF).  The real s27 is checked
#: in verbatim under ``benchmarks/netlists/`` rather than generated.
SEQ_CORPUS_RECIPES: Mapping[str, dict] = {
    "sqx344": dict(seed=344, n_gates=344, n_inputs=9, n_flops=15,
                   dp_fraction=0.15, window=30),
    "sqx1488": dict(seed=1488, n_gates=1488, n_inputs=8, n_flops=6,
                    dp_fraction=0.10, window=48),
}


def build_corpus_network(name: str) -> Network:
    """Regenerate one corpus circuit from its recipe (deterministic).

    Covers both the combinational (:data:`CORPUS_RECIPES`) and the
    sequential (:data:`SEQ_CORPUS_RECIPES`) corpus.
    """
    if name in CORPUS_RECIPES:
        return random_network(name=name, **CORPUS_RECIPES[name])
    if name in SEQ_CORPUS_RECIPES:
        return random_sequential_network(
            name=name, **SEQ_CORPUS_RECIPES[name]
        )
    raise KeyError(
        f"unknown corpus circuit {name!r}; available: "
        f"{sorted(CORPUS_RECIPES) + sorted(SEQ_CORPUS_RECIPES)}"
    )


def random_vectors(
    network: Network,
    n: int,
    seed: int,
    x_fraction: float = 0.0,
) -> list[dict[str, int]]:
    """``n`` seeded random test vectors for ``network``.

    ``x_fraction`` leaves that share of primary-input entries unset
    (= X under the simulators' missing-input convention), exercising
    the ternary paths.  Uses only :meth:`random.Random.random`, so the
    sequence is stable across Python versions — campaign tasks rely on
    this for bit-identical stores across processes.
    """
    rng = random.Random(seed)
    vectors: list[dict[str, int]] = []
    for _ in range(n):
        vector: dict[str, int] = {}
        for net in network.primary_inputs:
            if x_fraction and rng.random() < x_fraction:
                continue
            vector[net] = 1 if rng.random() < 0.5 else 0
        vectors.append(vector)
    return vectors


def random_sequence_vectors(
    network: Network,
    n: int,
    frames: int,
    seed: int,
    x_fraction: float = 0.0,
) -> list[list[dict[str, int]]]:
    """``n`` seeded random sequential tests of ``frames`` cycles each.

    A sequential test is a list of per-cycle primary-input assignments
    (what ``unroll=`` entry points and
    :func:`repro.logic.sequential.simulate_sequence` consume).  Same
    determinism contract as :func:`random_vectors` — and the same draw
    order per cycle, so a 1-frame sequence set equals the combinational
    vector set for the same seed.
    """
    rng = random.Random(seed)
    sequences: list[list[dict[str, int]]] = []
    for _ in range(n):
        cycles: list[dict[str, int]] = []
        for _ in range(frames):
            cycle: dict[str, int] = {}
            for net in network.primary_inputs:
                if x_fraction and rng.random() < x_fraction:
                    continue
                cycle[net] = 1 if rng.random() < 0.5 else 0
            cycles.append(cycle)
        sequences.append(cycles)
    return sequences
