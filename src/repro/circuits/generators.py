"""Benchmark circuit generators built from the CP cell library.

The generators favour the XOR/MAJ-rich structures that controllable-
polarity technology targets (the paper's Fig. 2 gates): full adders as
XOR3 + MAJ3 pairs, parity trees from XOR2/XOR3, TMR majority voters,
and the classic c17 control benchmark for ATPG regression.
"""

from __future__ import annotations

from repro.logic.bench_format import parse_bench
from repro.logic.network import Network

C17_BENCH = """
# ISCAS-85 c17 (NAND2-only control benchmark)
INPUT(g1)
INPUT(g2)
INPUT(g3)
INPUT(g6)
INPUT(g7)
OUTPUT(g22)
OUTPUT(g23)
g10 = NAND2(g1, g3)
g11 = NAND2(g3, g6)
g16 = NAND2(g2, g11)
g19 = NAND2(g11, g7)
g22 = NAND2(g10, g16)
g23 = NAND2(g16, g19)
"""


def c17() -> Network:
    """The ISCAS-85 c17 benchmark (6 NAND2 gates)."""
    return parse_bench(C17_BENCH, name="c17")


def ripple_carry_adder(width: int) -> Network:
    """An n-bit ripple-carry adder from XOR3 (sum) + MAJ3 (carry) cells.

    This is the canonical CP-technology arithmetic structure: one TIG
    XOR3 and one TIG MAJ3 per full adder.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    network = Network(f"rca{width}")
    for k in range(width):
        network.add_input(f"a{k}")
        network.add_input(f"b{k}")
    network.add_input("cin")
    carry = "cin"
    for k in range(width):
        network.add_gate(
            f"fa{k}_sum", "XOR3", [f"a{k}", f"b{k}", carry], f"s{k}"
        )
        network.add_gate(
            f"fa{k}_carry", "MAJ3", [f"a{k}", f"b{k}", carry], f"c{k}"
        )
        network.add_output(f"s{k}")
        carry = f"c{k}"
    network.add_output(carry)
    network.validate()
    return network


def parity_tree(width: int) -> Network:
    """Even-parity generator over ``width`` bits from XOR3/XOR2 cells."""
    if width < 2:
        raise ValueError("width must be >= 2")
    network = Network(f"parity{width}")
    for k in range(width):
        network.add_input(f"d{k}")
    level = [f"d{k}" for k in range(width)]
    counter = 0
    while len(level) > 1:
        next_level = []
        while level:
            if len(level) >= 3:
                group, level = level[:3], level[3:]
                gtype = "XOR3"
            elif len(level) >= 2:
                group, level = level[:2], level[2:]
                gtype = "XOR2"
            else:
                next_level.append(level.pop())
                continue
            out = f"p{counter}"
            counter += 1
            network.add_gate(f"g_{out}", gtype, group, out)
            next_level.append(out)
        level = next_level
    network.add_output(level[0])
    network.validate()
    return network


def majority_voter(modules: int = 3) -> Network:
    """A TMR-style bit voter: MAJ3 over module outputs (odd counts > 3
    are built as a MAJ3 tree over sub-votes)."""
    if modules != 3:
        raise ValueError("only triple-modular voting is supported")
    network = Network("tmr_voter")
    for k in range(3):
        network.add_input(f"m{k}")
    network.add_gate("vote", "MAJ3", ["m0", "m1", "m2"], "y")
    network.add_output("y")
    network.validate()
    return network


def equality_comparator(width: int) -> Network:
    """A == B over ``width``-bit operands: XNOR2 bits + NAND/NOR reduce."""
    if width < 1:
        raise ValueError("width must be >= 1")
    network = Network(f"eq{width}")
    for k in range(width):
        network.add_input(f"a{k}")
        network.add_input(f"b{k}")
    bits = []
    for k in range(width):
        network.add_gate(f"xn{k}", "XNOR2", [f"a{k}", f"b{k}"], f"e{k}")
        bits.append(f"e{k}")
    # Reduce with NAND + INV pairs (AND tree in SP cells).
    counter = 0
    while len(bits) > 1:
        next_bits = []
        while bits:
            if len(bits) >= 2:
                pair, bits = bits[:2], bits[2:]
                nand_out = f"n{counter}"
                and_out = f"r{counter}"
                counter += 1
                network.add_gate(
                    f"g_{nand_out}", "NAND2", pair, nand_out
                )
                network.add_gate(f"g_{and_out}", "INV", [nand_out], and_out)
                next_bits.append(and_out)
            else:
                next_bits.append(bits.pop())
        bits = next_bits
    network.add_output(bits[0])
    network.validate()
    return network


def mux_tree(select_bits: int) -> Network:
    """A 2^n:1 multiplexer tree from NAND2/INV cells."""
    if select_bits < 1:
        raise ValueError("select_bits must be >= 1")
    network = Network(f"mux{2 ** select_bits}")
    n_data = 2**select_bits
    for k in range(n_data):
        network.add_input(f"d{k}")
    for k in range(select_bits):
        network.add_input(f"s{k}")
        network.add_gate(f"inv_s{k}", "INV", [f"s{k}"], f"s{k}_n")
    level = [f"d{k}" for k in range(n_data)]
    counter = 0
    for bit in range(select_bits):
        next_level = []
        for pair_index in range(0, len(level), 2):
            a, b = level[pair_index], level[pair_index + 1]
            # y = a*!s + b*s  via NAND network.
            n1 = f"mx{counter}_a"
            n2 = f"mx{counter}_b"
            out = f"mx{counter}_y"
            counter += 1
            network.add_gate(f"g_{n1}", "NAND2", [a, f"s{bit}_n"], n1)
            network.add_gate(f"g_{n2}", "NAND2", [b, f"s{bit}"], n2)
            network.add_gate(f"g_{out}", "NAND2", [n1, n2], out)
            next_level.append(out)
        level = next_level
    network.add_output(level[0])
    network.validate()
    return network


def alu_bit_slice() -> Network:
    """A 1-bit ALU slice: AND/OR/XOR/SUM selected by two control bits.

    Demonstrates a mixed SP/DP netlist: NAND-based control multiplexing
    over XOR3/MAJ3 arithmetic.
    """
    network = Network("alu_slice")
    for net in ("a", "b", "cin", "op0", "op1"):
        network.add_input(net)
    # Function units.
    network.add_gate("u_and_n", "NAND2", ["a", "b"], "and_n")
    network.add_gate("u_and", "INV", ["and_n"], "f_and")
    network.add_gate("u_or_n", "NOR2", ["a", "b"], "or_n")
    network.add_gate("u_or", "INV", ["or_n"], "f_or")
    network.add_gate("u_xor", "XOR2", ["a", "b"], "f_xor")
    network.add_gate("u_sum", "XOR3", ["a", "b", "cin"], "f_sum")
    network.add_gate("u_cout", "MAJ3", ["a", "b", "cin"], "cout")
    # 4:1 select: y = NAND(m0, m1, m2, m3) where m_i = NAND3(f_i, sel_i)
    # — exactly one !m_i can be high, so the wide NAND ors the selected
    # function through.  The 4-wide NAND is built as two NAND2+INV pairs
    # feeding a final NAND2.
    network.add_gate("inv_op0", "INV", ["op0"], "op0_n")
    network.add_gate("inv_op1", "INV", ["op1"], "op1_n")
    network.add_gate("s_and", "NAND3", ["f_and", "op0_n", "op1_n"], "m0")
    network.add_gate("s_or", "NAND3", ["f_or", "op0", "op1_n"], "m1")
    network.add_gate("s_xor", "NAND3", ["f_xor", "op0_n", "op1"], "m2")
    network.add_gate("s_sum", "NAND3", ["f_sum", "op0", "op1"], "m3")
    network.add_gate("m_a_n", "NAND2", ["m0", "m1"], "ma_n")
    network.add_gate("m_a", "INV", ["ma_n"], "ma")
    network.add_gate("m_b_n", "NAND2", ["m2", "m3"], "mb_n")
    network.add_gate("m_b", "INV", ["mb_n"], "mb")
    network.add_gate("m_out", "NAND2", ["ma", "mb"], "y")
    network.add_output("y")
    network.add_output("cout")
    network.validate()
    return network


def alu(width: int) -> Network:
    """A ``width``-bit ALU: ripple of :func:`alu_bit_slice` structures
    sharing the op0/op1 control bits, with a carry chain through the
    MAJ3 carry cells.

    Per bit: AND/OR/XOR/SUM function units plus NAND-based 4:1 select —
    the mixed SP/DP workload the compiled fault-simulation engine is
    benchmarked on.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    network = Network(f"alu{width}")
    for k in range(width):
        network.add_input(f"a{k}")
        network.add_input(f"b{k}")
    network.add_input("cin")
    for net in ("op0", "op1"):
        network.add_input(net)
    network.add_gate("inv_op0", "INV", ["op0"], "op0_n")
    network.add_gate("inv_op1", "INV", ["op1"], "op1_n")
    carry = "cin"
    for k in range(width):
        a, b = f"a{k}", f"b{k}"
        p = f"s{k}_"  # per-slice prefix for gates and internal nets
        network.add_gate(f"{p}and_n", "NAND2", [a, b], f"{p}fand_n")
        network.add_gate(f"{p}and", "INV", [f"{p}fand_n"], f"{p}fand")
        network.add_gate(f"{p}or_n", "NOR2", [a, b], f"{p}for_n")
        network.add_gate(f"{p}or", "INV", [f"{p}for_n"], f"{p}for")
        network.add_gate(f"{p}xor", "XOR2", [a, b], f"{p}fxor")
        network.add_gate(f"{p}sum", "XOR3", [a, b, carry], f"{p}fsum")
        network.add_gate(f"{p}cout", "MAJ3", [a, b, carry], f"c{k}")
        network.add_gate(
            f"{p}m0", "NAND3", [f"{p}fand", "op0_n", "op1_n"], f"{p}m0"
        )
        network.add_gate(
            f"{p}m1", "NAND3", [f"{p}for", "op0", "op1_n"], f"{p}m1"
        )
        network.add_gate(
            f"{p}m2", "NAND3", [f"{p}fxor", "op0_n", "op1"], f"{p}m2"
        )
        network.add_gate(
            f"{p}m3", "NAND3", [f"{p}fsum", "op0", "op1"], f"{p}m3"
        )
        network.add_gate(f"{p}ma_n", "NAND2", [f"{p}m0", f"{p}m1"], f"{p}ma_n")
        network.add_gate(f"{p}ma", "INV", [f"{p}ma_n"], f"{p}ma")
        network.add_gate(f"{p}mb_n", "NAND2", [f"{p}m2", f"{p}m3"], f"{p}mb_n")
        network.add_gate(f"{p}mb", "INV", [f"{p}mb_n"], f"{p}mb")
        network.add_gate(f"{p}out", "NAND2", [f"{p}ma", f"{p}mb"], f"y{k}")
        network.add_output(f"y{k}")
        carry = f"c{k}"
    network.add_output(carry)
    network.validate()
    return network


def array_multiplier(width: int) -> Network:
    """A ``width`` x ``width`` unsigned array multiplier.

    Partial products are NAND2+INV AND cells (the SP library idiom);
    rows are accumulated with XOR2/XOR3 sum and NAND-AND / MAJ3 carry
    half/full adders — a large mixed SP/DP stress circuit for the
    batched fault-simulation campaigns.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    network = Network(f"mul{width}")
    for k in range(width):
        network.add_input(f"a{k}")
    for k in range(width):
        network.add_input(f"b{k}")

    def add_and(name: str, x: str, y: str, out: str) -> str:
        network.add_gate(f"{name}_n", "NAND2", [x, y], f"{out}_n")
        network.add_gate(name, "INV", [f"{out}_n"], out)
        return out

    pp = [
        [
            add_and(f"pp{i}_{j}", f"a{j}", f"b{i}", f"pp{i}_{j}o")
            for j in range(width)
        ]
        for i in range(width)
    ]

    def half_adder(name: str, x: str, y: str) -> tuple[str, str]:
        network.add_gate(f"{name}_s", "XOR2", [x, y], f"{name}_so")
        carry = add_and(f"{name}_c", x, y, f"{name}_co")
        return f"{name}_so", carry

    def full_adder(name: str, x: str, y: str, z: str) -> tuple[str, str]:
        network.add_gate(f"{name}_s", "XOR3", [x, y, z], f"{name}_so")
        network.add_gate(f"{name}_c", "MAJ3", [x, y, z], f"{name}_co")
        return f"{name}_so", f"{name}_co"

    product: list[str] = []
    acc = pp[0]  # weights i .. i+width-1 at the start of row i
    top_carry: str | None = None
    for i in range(1, width):
        product.append(acc[0])
        new_acc: list[str] = []
        carry: str | None = None
        for k in range(width):
            operands = [pp[i][k]]
            if k + 1 < len(acc):
                operands.append(acc[k + 1])
            elif top_carry is not None:
                operands.append(top_carry)
            if carry is not None:
                operands.append(carry)
            name = f"add{i}_{k}"
            if len(operands) == 1:
                total, carry = operands[0], None
            elif len(operands) == 2:
                total, carry = half_adder(name, *operands)
            else:
                total, carry = full_adder(name, *operands)
            new_acc.append(total)
        acc = new_acc
        top_carry = carry
    product.extend(acc)
    if top_carry is not None:
        product.append(top_carry)
    for k, net in enumerate(product):
        network.add_gate(f"buf_p{k}", "BUF", [net], f"p{k}")
        network.add_output(f"p{k}")
    network.validate()
    return network


BENCHMARK_BUILDERS = {
    "c17": c17,
    "rca4": lambda: ripple_carry_adder(4),
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "rca32": lambda: ripple_carry_adder(32),
    "parity8": lambda: parity_tree(8),
    "parity16": lambda: parity_tree(16),
    "parity32": lambda: parity_tree(32),
    "tmr_voter": majority_voter,
    "eq4": lambda: equality_comparator(4),
    "eq8": lambda: equality_comparator(8),
    "mux8": lambda: mux_tree(3),
    "alu_slice": alu_bit_slice,
    "alu4": lambda: alu(4),
    "alu8": lambda: alu(8),
    "mul4": lambda: array_multiplier(4),
}


def build_benchmark(name: str) -> Network:
    """Build a named benchmark circuit."""
    if name not in BENCHMARK_BUILDERS:
        raise KeyError(
            f"unknown benchmark {name!r}; "
            f"available: {sorted(BENCHMARK_BUILDERS)}"
        )
    return BENCHMARK_BUILDERS[name]()
