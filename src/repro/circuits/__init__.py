"""Benchmark circuits built from the CP cell library."""

from repro.circuits.generators import (
    BENCHMARK_BUILDERS,
    C17_BENCH,
    alu,
    alu_bit_slice,
    array_multiplier,
    build_benchmark,
    c17,
    equality_comparator,
    majority_voter,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)

__all__ = [
    "BENCHMARK_BUILDERS",
    "C17_BENCH",
    "alu",
    "alu_bit_slice",
    "array_multiplier",
    "build_benchmark",
    "c17",
    "equality_comparator",
    "majority_voter",
    "mux_tree",
    "parity_tree",
    "ripple_carry_adder",
]
