"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` requires ``wheel`` for the
PEP 517 editable build; on offline machines without it, run
``python setup.py develop`` instead (or let tests pick the package up via
the src-layout path configuration).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": ["repro = repro.campaign.cli:main"],
    },
)
